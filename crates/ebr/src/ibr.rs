//! The interval-based backend (2GE-style IBR).
//!
//! Epoch reclamation's failure mode is global: one stalled reader freezes the
//! epoch and **every** retirement after that accumulates.  Interval-based
//! reclamation (He/Wen et al., PPoPP 2018) makes the damage proportional to
//! the reader instead:
//!
//! * A global **era** counter advances on a retirement cadence.
//! * Every allocation is stamped with its **birth era** (the block header,
//!   see [`crate::block`]); every retirement stamps a **retire era**.  A
//!   node's lifespan is the interval `[birth, retire]`.
//! * A pinned thread publishes a **reservation** `[lo, hi]`: `lo` is fixed at
//!   pin time, `hi` grows as the thread performs protected loads
//!   ([`crate::ReclaimGuard::protect_load`] re-reads the era after each load
//!   and republishes `hi` until the load is covered).
//! * A retired node is freed once its lifespan overlaps **no** active
//!   reservation: free iff for every `[lo, hi]`, not
//!   (`birth <= hi && retire >= lo`).
//!
//! A stalled reader's `hi` stops growing, so it only pins nodes born before
//! its last protected load — garbage born *after* the stall is freed on the
//! normal cadence.  That is the property experiment E17 measures against the
//! epoch backend.
//!
//! ## Structure discipline
//!
//! The interval argument covers pointers loaded from cells of nodes that are
//! still *attached* (reachable) at load time: such a target cannot have been
//! retired before the load, so every collector scanning after its retirement
//! sees the reader's raised `hi` covering it.  Pointers read out of already
//! detached nodes carry no such guarantee — the same restriction hazard-
//! pointer schemes place on Harris-style lists.  The in-tree structures fit:
//! operations re-locate from the root, mutations validate via CAS expected
//! values, and the long-lived cursors repin-and-reseek on a fixed cadence
//! (DESIGN.md §8 spells out the argument).
//!
//! ## Bags and orphans
//!
//! Retired nodes go into per-thread bags (own mutex each) registered in a
//! global list, so any thread can run a *global* collect — the
//! [`crate::GarbageBound`] ladder depends on that to free garbage a stalled
//! or exited peer left behind.  A thread that exits leaves its bag in the
//! list as an orphan; global collects drain it and drop it once empty.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{block, bound, ReclaimGuard, Reclaimer, ReclamationStats, Shared};

/// Reservation value meaning "this participant is not currently pinned".
const INACTIVE: u64 = u64::MAX;

/// Retirements between era advancements.  Smaller values give finer-grained
/// lifespans (less garbage pinned by a stalled reader) at the cost of more
/// era churn, and each era change costs every active reader one extra
/// republish-and-retry in its next protected load.
const RETIRES_PER_ERA: u64 = 64;

/// Pins between local collection attempts (per thread); every fourth attempt
/// widens to a global collect so orphaned bags drain on the same cadence.
const PINS_PER_COLLECT: u64 = 256;

/// Per-thread retired-node count that triggers an eager local collect.
const BAG_HIGH_WATER: usize = 256;

/// The global era.  Starts at 1 so a zero birth stamp is visibly impossible.
static ERA: AtomicU64 = AtomicU64::new(1);

/// Retirement ticks driving the era cadence.
static RETIRE_TICK: AtomicU64 = AtomicU64::new(0);

/// The current era (birth stamp for new allocations; see [`crate::block`]).
pub(crate) fn current_era() -> u64 {
    ERA.load(Ordering::Relaxed)
}

/// Reclamation health counters for this backend.  Same contract as the epoch
/// backend's: cold-path updates only, free-running since process start.
mod health {
    use std::sync::atomic::AtomicU64;

    /// Successful era advancements (reported as `epoch_advances`).
    pub static ERA_ADVANCES: AtomicU64 = AtomicU64::new(0);
    /// Nodes pushed into a retire bag by `defer_destroy`.
    pub static NODES_RETIRED: AtomicU64 = AtomicU64::new(0);
    /// Retired nodes whose destructor has run.
    pub static NODES_FREED: AtomicU64 = AtomicU64::new(0);
    /// Explicit `IbrGuard::repin` calls that actually cycled the reservation.
    pub static REPINS: AtomicU64 = AtomicU64::new(0);
    /// Peak pending-garbage depth (see `ReclamationStats::bag_depth_hwm`).
    pub static BAG_DEPTH_HWM: AtomicU64 = AtomicU64::new(0);
    /// Retirements that found the garbage depth over the configured bound.
    pub static BOUND_TRIPS: AtomicU64 = AtomicU64::new(0);
    /// Yield-then-collect escalation rounds spent over the bound.
    pub static BOUND_ESCALATIONS: AtomicU64 = AtomicU64::new(0);
}

/// Current pending-garbage depth implied by the free-running counters.
fn pending_depth() -> usize {
    let retired = health::NODES_RETIRED.load(Ordering::Relaxed);
    let freed = health::NODES_FREED.load(Ordering::Relaxed);
    retired.saturating_sub(freed) as usize
}

/// Reads this backend's reclamation health counters.
pub fn ibr_reclamation_stats() -> ReclamationStats {
    ReclamationStats {
        epoch_advances: health::ERA_ADVANCES.load(Ordering::Relaxed),
        nodes_retired: health::NODES_RETIRED.load(Ordering::Relaxed),
        nodes_freed: health::NODES_FREED.load(Ordering::Relaxed),
        // Interval collection has no min-stamp fast path; the field stays 0
        // so dashboards can share one schema across backends.
        min_stamp_skips: 0,
        repins: health::REPINS.load(Ordering::Relaxed),
        bag_depth_hwm: health::BAG_DEPTH_HWM.load(Ordering::Relaxed),
        bound_trips: health::BOUND_TRIPS.load(Ordering::Relaxed),
        bound_escalations: health::BOUND_ESCALATIONS.load(Ordering::Relaxed),
    }
}

/// One registered thread's reservation.  `lo == INACTIVE` means unpinned;
/// while pinned, `lo` is fixed and `hi` grows monotonically.
struct IbrSlot {
    lo: AtomicU64,
    hi: AtomicU64,
}

/// All registered reservations.  Locked only to register/deregister a thread
/// and (try_lock) to snapshot during collection.
static REGISTRY: Mutex<Vec<Arc<IbrSlot>>> = Mutex::new(Vec::new());

/// A retired node: its lifespan and the type-erased block destructor.
struct Retired {
    birth: u64,
    retire: u64,
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// Retired items are only created from owned blocks and only consumed once.
unsafe impl Send for Retired {}

/// One thread's retire bag.  Behind its own mutex (not thread-local state)
/// so *other* threads can drain it during a global collect.
#[derive(Default)]
struct Bag {
    items: Vec<Retired>,
}

/// Every live and orphaned bag.  A thread leaves its bag here on exit;
/// global collects drain orphans and prune them once empty.
static BAGS: Mutex<Vec<Arc<Mutex<Bag>>>> = Mutex::new(Vec::new());

/// Double-retire audit set, mirroring the epoch backend's bag scan.  The
/// bags are sharded per thread here, so the audit keeps its own global index
/// of pending pointers instead of scanning.
#[cfg(any(feature = "retire-audit", debug_assertions))]
static AUDIT: Mutex<Vec<usize>> = Mutex::new(Vec::new());

#[cfg(any(feature = "retire-audit", debug_assertions))]
fn audit_insert(ptr: *mut u8) -> bool {
    let mut set = AUDIT.lock().expect("ibr audit poisoned");
    if set.contains(&(ptr as usize)) {
        return false;
    }
    set.push(ptr as usize);
    true
}

#[cfg(any(feature = "retire-audit", debug_assertions))]
fn audit_remove(ptr: *mut u8) {
    let mut set = AUDIT.lock().expect("ibr audit poisoned");
    if let Some(i) = set.iter().position(|&p| p == ptr as usize) {
        set.swap_remove(i);
    }
}

/// Advances the era on the retirement cadence.
fn tick_era() {
    let t = RETIRE_TICK.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    if t % RETIRES_PER_ERA == 0 {
        ERA.fetch_add(1, Ordering::SeqCst);
        health::ERA_ADVANCES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Frees every entry of `items` whose lifespan overlaps no active
/// reservation.  Returns the number freed (0 if the registry was contended).
fn collect_locked(items: &mut Vec<Retired>) -> u64 {
    if items.is_empty() {
        return 0;
    }
    // Order the reservation snapshot after the retirements that queued these
    // items (their SeqCst era loads), matching the readers' pin fences.
    fence(Ordering::SeqCst);
    let reservations: Vec<(u64, u64)> = {
        let Ok(registry) = REGISTRY.try_lock() else { return 0 };
        registry
            .iter()
            .filter_map(|slot| {
                let lo = slot.lo.load(Ordering::SeqCst);
                if lo == INACTIVE {
                    None
                } else {
                    // `hi` can move under us (unpin publishes INACTIVE =
                    // u64::MAX, repin a fresh era): every readable value is a
                    // superset of some instantaneous reservation, i.e. only
                    // conservative.
                    Some((lo, slot.hi.load(Ordering::SeqCst)))
                }
            })
            .collect()
    };
    let mut freed = 0u64;
    items.retain(|n| {
        let reserved = reservations.iter().any(|&(lo, hi)| n.birth <= hi && n.retire >= lo);
        if !reserved {
            #[cfg(any(feature = "retire-audit", debug_assertions))]
            audit_remove(n.ptr);
            unsafe { (n.drop_fn)(n.ptr) };
            freed += 1;
        }
        reserved
    });
    if freed > 0 {
        health::NODES_FREED.fetch_add(freed, Ordering::Relaxed);
    }
    freed
}

/// Collects one bag (try_lock; a contended bag is skipped).
fn try_collect_bag(bag: &Arc<Mutex<Bag>>) {
    if let Ok(mut b) = bag.try_lock() {
        collect_locked(&mut b.items);
    }
}

/// Collects every registered bag and prunes empty orphans.  Non-blocking
/// throughout; a contended bag or registry is skipped, not waited on.
fn try_collect_global() {
    let Ok(mut bags) = BAGS.try_lock() else { return };
    bags.retain(|bag| {
        if let Ok(mut b) = bag.try_lock() {
            collect_locked(&mut b.items);
            // An empty bag whose owning thread is gone (our clone is the only
            // handle left) has nothing more to deliver.
            !(b.items.is_empty() && Arc::strong_count(bag) == 1)
        } else {
            true
        }
    });
}

/// Global-scope collect used by the escalation ladder: nudge the era forward
/// so freshly retired garbage lands outside stalled reservations, then sweep
/// every bag.
fn escalate_collect() {
    ERA.fetch_add(1, Ordering::SeqCst);
    health::ERA_ADVANCES.fetch_add(1, Ordering::Relaxed);
    try_collect_global();
}

/// Per-thread participant state.
struct Local {
    slot: Arc<IbrSlot>,
    bag: Arc<Mutex<Bag>>,
    /// Re-entrant pin depth; the reservation is written only at depth 0 -> 1.
    pin_depth: Cell<usize>,
    /// Total pins, used to sample collection attempts.
    pin_count: Cell<u64>,
    /// Cache of the published `hi`, so the protected-load fast path is one
    /// era load + compare with no store.
    hi_cache: Cell<u64>,
}

impl Local {
    fn register() -> Local {
        let slot = Arc::new(IbrSlot { lo: AtomicU64::new(INACTIVE), hi: AtomicU64::new(INACTIVE) });
        REGISTRY.lock().expect("ibr registry poisoned").push(Arc::clone(&slot));
        let bag = Arc::new(Mutex::new(Bag::default()));
        BAGS.lock().expect("ibr bags poisoned").push(Arc::clone(&bag));
        Local {
            slot,
            bag,
            pin_depth: Cell::new(0),
            pin_count: Cell::new(0),
            hi_cache: Cell::new(INACTIVE),
        }
    }

    fn pin(&self) {
        if self.pin_depth.get() == 0 {
            // Publish the reservation, then re-check the era (the same
            // publication fence dance as the epoch backend's pin): a
            // collector that misses this reservation must have scanned
            // before the fence, when this thread held no pointers.
            loop {
                let e = ERA.load(Ordering::SeqCst);
                self.slot.lo.store(e, Ordering::SeqCst);
                self.slot.hi.store(e, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if ERA.load(Ordering::SeqCst) == e {
                    self.hi_cache.set(e);
                    break;
                }
            }
            let c = self.pin_count.get().wrapping_add(1);
            self.pin_count.set(c);
            if c % PINS_PER_COLLECT == 0 {
                if c % (4 * PINS_PER_COLLECT) == 0 {
                    try_collect_global();
                } else {
                    try_collect_bag(&self.bag);
                }
            }
        }
        self.pin_depth.set(self.pin_depth.get() + 1);
    }

    fn unpin(&self) {
        let d = self.pin_depth.get();
        debug_assert!(d > 0, "unpin without matching pin");
        self.pin_depth.set(d - 1);
        if d == 1 {
            // `lo` is the collector's active gate; clear `hi` first so any
            // torn read is the conservative (INACTIVE = maximal) value.
            self.slot.hi.store(INACTIVE, Ordering::Release);
            self.slot.lo.store(INACTIVE, Ordering::Release);
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Thread exit: withdraw the reservation so a dead thread cannot pin
        // garbage forever.  The bag stays registered as an orphan — global
        // collects drain and prune it.
        if let Ok(mut reg) = REGISTRY.lock() {
            reg.retain(|s| !Arc::ptr_eq(s, &self.slot));
        }
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

/// Pins the current thread under interval-based reclamation.
pub fn pin_ibr() -> IbrGuard {
    LOCAL.with(Local::pin);
    IbrGuard { protected: true, _not_send: PhantomData }
}

/// Returns a dummy IBR guard for contexts with exclusive access.  Deferred
/// destructions on this guard run immediately.
///
/// # Safety
///
/// The caller must guarantee that no other thread is accessing the data
/// structure concurrently.
pub unsafe fn unprotected_ibr() -> &'static IbrGuard {
    struct SyncGuard(IbrGuard);
    unsafe impl Sync for SyncGuard {}
    static UNPROTECTED: SyncGuard =
        SyncGuard(IbrGuard { protected: false, _not_send: PhantomData });
    &UNPROTECTED.0
}

/// A pinned-reservation guard.  Dropping it unpins the thread.
pub struct IbrGuard {
    protected: bool,
    /// Guards are tied to the pinning thread.
    _not_send: PhantomData<*mut ()>,
}

impl ReclaimGuard for IbrGuard {
    /// Retires the node behind `ptr` (same contract as the epoch backend's
    /// `defer_destroy`): freed once its lifespan overlaps no reservation.
    unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw() as *mut T;
        debug_assert!(!raw.is_null(), "defer_destroy of null");
        if !self.protected {
            drop(block::dealloc_block(raw));
            return;
        }
        let birth = block::birth_of(raw);
        let retire = ERA.load(Ordering::SeqCst);
        // Double-retire audit (see the epoch backend for the rationale): the
        // second retirement panics here, before anything is queued twice.
        #[cfg(any(feature = "retire-audit", debug_assertions))]
        if !audit_insert(raw.cast()) {
            panic!(
                "ibr: double retire of {raw:p} — the node is already queued for \
                 reclamation, so a second `defer_destroy` would double-free it"
            );
        }
        let len = LOCAL.with(|local| {
            let mut bag = local.bag.lock().expect("ibr bag poisoned");
            bag.items.push(Retired {
                birth,
                retire,
                ptr: raw.cast(),
                drop_fn: block::drop_block_erased::<T>,
            });
            bag.items.len()
        });
        health::NODES_RETIRED.fetch_add(1, Ordering::Relaxed);
        health::BAG_DEPTH_HWM.fetch_max(pending_depth() as u64, Ordering::Relaxed);
        tick_era();
        if bound::deferring() {
            // Inside a batch-retire window: the window's close runs one
            // high-water collect and one bound ladder for the whole batch.
            return;
        }
        if len >= BAG_HIGH_WATER {
            LOCAL.with(|local| try_collect_bag(&local.bag));
        }
        if bound::over(pending_depth()) {
            LOCAL.with(|local| {
                bound::enforce(
                    &pending_depth,
                    &|| try_collect_bag(&local.bag),
                    &escalate_collect,
                    &health::BOUND_TRIPS,
                    &health::BOUND_ESCALATIONS,
                );
            });
        }
    }

    /// Forces a **global** collection attempt: every thread's bag plus the
    /// orphans, best effort, non-blocking.
    fn flush(&self) {
        try_collect_global();
    }

    /// Momentarily unpins and re-pins at the current era, collapsing the
    /// reservation to a fresh `[now, now]`.  Same pointer-invalidation
    /// contract as the epoch backend's repin.
    fn repin(&mut self) {
        if self.protected {
            health::REPINS.fetch_add(1, Ordering::Relaxed);
            LOCAL.with(|local| {
                local.unpin();
                local.pin();
            });
        }
    }

    fn protect_load<F: FnMut() -> usize>(&self, mut load: F) -> usize {
        if !self.protected {
            return load();
        }
        LOCAL.with(|local| {
            loop {
                let word = load();
                let era = ERA.load(Ordering::SeqCst);
                if era == local.hi_cache.get() {
                    // The era did not move across the load: the published
                    // reservation covers the load's era, so the word carries
                    // a dereference license.
                    return word;
                }
                local.slot.hi.store(era, Ordering::SeqCst);
                local.hi_cache.set(era);
                // Re-load under the extended reservation: the first read may
                // have caught a pointer born after the previously published
                // `hi` that a concurrent collect was entitled to free.
            }
        })
    }

    fn protect_current_era(&self) {
        if !self.protected {
            return;
        }
        LOCAL.with(|local| {
            let era = ERA.load(Ordering::SeqCst);
            if era != local.hi_cache.get() {
                local.slot.hi.store(era, Ordering::SeqCst);
                local.hi_cache.set(era);
            }
        });
    }

    fn retire_batch<T, F: FnOnce() -> T>(&self, f: F) -> T {
        let out = {
            let _window = bound::enter_batch();
            f()
        };
        // Settle once for the whole batch (skipped under a still-open outer
        // window, and for the unprotected guard whose retirements free
        // immediately).
        if self.protected && !bound::deferring() {
            LOCAL.with(|local| {
                if local.bag.lock().expect("ibr bag poisoned").items.len() >= BAG_HIGH_WATER {
                    try_collect_bag(&local.bag);
                }
                if bound::over(pending_depth()) {
                    bound::enforce(
                        &pending_depth,
                        &|| try_collect_bag(&local.bag),
                        &escalate_collect,
                        &health::BOUND_TRIPS,
                        &health::BOUND_ESCALATIONS,
                    );
                }
            });
        }
        out
    }
}

impl fmt::Debug for IbrGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IbrGuard").field("protected", &self.protected).finish()
    }
}

impl Drop for IbrGuard {
    fn drop(&mut self) {
        if self.protected {
            LOCAL.with(Local::unpin);
        }
    }
}

/// The interval-based backend as a [`Reclaimer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ibr;

impl Reclaimer for Ibr {
    type Guard = IbrGuard;

    const NAME: &'static str = "ibr";

    fn pin() -> IbrGuard {
        pin_ibr()
    }

    unsafe fn unprotected() -> &'static IbrGuard {
        unprotected_ibr()
    }

    fn collect() {
        try_collect_global();
    }

    fn stats() -> ReclamationStats {
        ibr_reclamation_stats()
    }

    fn reset_bag_depth_hwm() {
        health::BAG_DEPTH_HWM.store(pending_depth() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atomic, Owned};
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;

    /// One era-advancing churn round: retire filler under a short pin (a
    /// thread's own reservation covers its own retirements, so the pin must
    /// drop before anything it queued can free), then collect globally.
    fn churn_once() {
        {
            let guard = pin_ibr();
            // Retirements advance the era; otherwise nothing ever moves.
            for _ in 0..RETIRES_PER_ERA {
                let p = Owned::new(0u8).into_shared(&guard);
                unsafe { guard.defer_destroy(p) };
            }
        }
        unsafe { unprotected_ibr() }.flush();
    }

    /// Churn until `done` holds (or a generous cap, so a failure still
    /// terminates).  Sibling tests in this binary pin concurrently, so a
    /// single round is not guaranteed to free anything.
    fn churn_until(done: impl Fn() -> bool) {
        for _ in 0..200 {
            if done() {
                return;
            }
            churn_once();
            std::thread::yield_now();
        }
    }

    #[test]
    fn unprotected_defer_runs_immediately() {
        struct NoteDrop(Arc<StdAtomicUsize>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        let guard = unsafe { unprotected_ibr() };
        let p = Owned::new(NoteDrop(Arc::clone(&drops))).into_shared(guard);
        unsafe { guard.defer_destroy(p) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deferred_destruction_eventually_runs() {
        struct NoteDrop(Arc<StdAtomicUsize>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        {
            let guard = pin_ibr();
            let p = Owned::new(NoteDrop(Arc::clone(&drops))).into_shared(&guard);
            unsafe { guard.defer_destroy(p) };
            // Still pinned: our own reservation covers the retirement.
            unsafe { unprotected_ibr() }.flush();
            assert_eq!(drops.load(Ordering::SeqCst), 0);
        }
        churn_until(|| drops.load(Ordering::SeqCst) == 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stalled_reader_does_not_block_younger_garbage() {
        use std::sync::mpsc;
        // A reader pins and stalls; a writer then allocates AND retires nodes
        // born after the reader's reservation.  Those must be freeable while
        // the reader is still stalled — the property EBR lacks.
        struct NoteDrop(Arc<StdAtomicUsize>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (ready_tx, ready_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let a = Arc::new(Atomic::new(7u64));
        let reader = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                let guard = pin_ibr();
                let p = a.load(Ordering::SeqCst, &guard);
                ready_tx.send(()).unwrap();
                done_rx.recv().unwrap();
                // The node loaded under the reservation stays readable.
                assert_eq!(unsafe { *p.deref() }, 7);
            })
        };
        ready_rx.recv().unwrap();

        let drops = Arc::new(StdAtomicUsize::new(0));
        // Force the era past the reader's frozen `hi` so the garbage below
        // is born strictly after its reservation.
        churn_once();
        churn_once();
        {
            let guard = pin_ibr();
            for _ in 0..100 {
                let p = Owned::new(NoteDrop(Arc::clone(&drops))).into_shared(&guard);
                unsafe { guard.defer_destroy(p) };
            }
        }
        // Collect while the reader still stalls: every NoteDrop was born
        // after the reader's `hi`, so its reservation does not cover them.
        churn_until(|| drops.load(Ordering::SeqCst) == 100);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            100,
            "garbage born after the stalled reader's reservation must be freed"
        );
        done_tx.send(()).unwrap();
        reader.join().unwrap();
        let guard = pin_ibr();
        unsafe { drop(a.load(Ordering::SeqCst, &guard).into_owned()) };
    }

    #[test]
    fn protected_node_survives_collection() {
        use std::sync::mpsc;
        // The dual: a node loaded under the reader's reservation must NOT be
        // freed, however far the era advances.
        let a = Arc::new(Atomic::new(41u64));
        let (ready_tx, ready_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let reader = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                let guard = pin_ibr();
                let p = a.load(Ordering::SeqCst, &guard);
                ready_tx.send(()).unwrap();
                done_rx.recv().unwrap();
                assert_eq!(unsafe { *p.deref() }, 41);
            })
        };
        ready_rx.recv().unwrap();
        {
            let guard = pin_ibr();
            let old = a.load(Ordering::SeqCst, &guard);
            let new = Owned::new(42u64).into_shared(&guard);
            a.compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst, &guard).unwrap();
            unsafe { guard.defer_destroy(old) };
        }
        for _ in 0..8 {
            churn_once();
        }
        done_tx.send(()).unwrap();
        reader.join().unwrap();
        let guard = pin_ibr();
        unsafe { drop(a.load(Ordering::SeqCst, &guard).into_owned()) };
    }

    #[test]
    fn ibr_stats_track_retire_free_cycle() {
        let before = ibr_reclamation_stats();
        {
            let guard = pin_ibr();
            let p = Owned::new(123u64).into_shared(&guard);
            unsafe { guard.defer_destroy(p) };
        }
        churn_until(|| ibr_reclamation_stats().since(&before).nodes_freed >= 1);
        let mut guard = pin_ibr();
        guard.repin();
        drop(guard);
        let delta = ibr_reclamation_stats().since(&before);
        assert!(delta.nodes_retired >= 1, "retired: {delta:?}");
        assert!(delta.nodes_freed >= 1, "freed: {delta:?}");
        assert!(delta.epoch_advances >= 1, "era advances: {delta:?}");
        assert!(delta.repins >= 1, "repins: {delta:?}");
        assert!(delta.bag_depth_hwm >= 1, "hwm: {delta:?}");
        let now = ibr_reclamation_stats();
        assert!(now.nodes_freed <= now.nodes_retired);
    }

    #[test]
    #[cfg(any(feature = "retire-audit", debug_assertions))]
    fn double_retire_panics_under_audit() {
        let guard = pin_ibr();
        let p = Owned::new(9u64).into_shared(&guard);
        unsafe { guard.defer_destroy(p) };
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            guard.defer_destroy(p)
        }));
        let msg = *second.expect_err("double retire must panic").downcast::<String>().unwrap();
        assert!(msg.contains("double retire"), "unexpected panic message: {msg}");
        // The first retirement stays queued and frees exactly once.
        drop(guard);
        churn_once();
    }

    #[test]
    fn concurrent_churn_is_safe() {
        let a = Arc::new(Atomic::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..20_000u64 {
                        let guard = pin_ibr();
                        let new = Owned::new(t * 1_000_000 + i).into_shared(&guard);
                        loop {
                            let old = a.load(Ordering::SeqCst, &guard);
                            match a.compare_exchange(
                                old,
                                new,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                                &guard,
                            ) {
                                Ok(_) => {
                                    unsafe { guard.defer_destroy(old) };
                                    break;
                                }
                                Err(_) => continue,
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Drain what the exited workers orphaned.
        unsafe { unprotected_ibr() }.flush();
        let guard = pin_ibr();
        unsafe { drop(a.load(Ordering::SeqCst, &guard).into_owned()) };
    }

    #[test]
    fn garbage_bound_escalation_frees_under_pressure() {
        // Install a small ceiling, retire well past it with no stalled
        // readers, and check the ladder both fired and recovered.
        let prev = crate::garbage_bound();
        crate::set_garbage_bound(crate::GarbageBound::nodes(64));
        let before = ibr_reclamation_stats();
        // Short pins: a thread's own reservation covers its own retirements,
        // so the ladder can only free garbage from already-dropped pins.
        for _ in 0..100 {
            let guard = pin_ibr();
            for _ in 0..10 {
                let p = Owned::new([0u64; 4]).into_shared(&guard);
                unsafe { guard.defer_destroy(p) };
            }
            drop(guard);
        }
        crate::set_garbage_bound(prev);
        let delta = ibr_reclamation_stats().since(&before);
        assert!(delta.bound_trips >= 1, "ceiling never tripped: {delta:?}");
        assert!(delta.nodes_freed > 0, "escalation freed nothing: {delta:?}");
    }
}
