//! # shard — key-space partitioning over any concurrent set
//!
//! The paper's tree coordinates at the granularity of individual links, so
//! operations on disjoint parts of the tree do not obstruct each other — but
//! under heavy load the *upper levels* of a single tree are still a shared
//! hot path that every operation traverses.  The standard remedy in the
//! concurrent-search-structure literature is **key-space partitioning**: run
//! `N` independent structures and route each key to one of them, shrinking
//! both the contention domain and the search depth by a factor of `N`.
//!
//! This crate provides that layer for *any* [`cset::ConcurrentSet`]:
//!
//! * [`ShardRouter`] — the routing policy abstraction;
//! * [`HashRouter`] — uniform spread by hashing (order-destroying);
//! * [`RangeRouter`] — contiguous `u64` key ranges (order-preserving, so
//!   cross-shard ordered scans remain possible; see [`OrderedRouter`]);
//! * [`Sharded`] — the wrapper that owns the inner structures, implements
//!   [`cset::ConcurrentSet`] by routing each operation, aggregates
//!   `len`/statistics across shards, and (with an ordered router) serves
//!   cross-shard ordered scans as a **bounded-memory k-way merge** over
//!   per-shard streaming cursors ([`Sharded::scan_range`] /
//!   [`Sharded::keys_in_range`]; see the [`merge`] module);
//! * [`ShardedMap`] — the [`cset::ConcurrentMap`] facade over the same
//!   routing machinery, for map-shaped inner structures such as
//!   `LfBst<K, V>` (streaming scans via [`cset::OrderedMap::scan_entries`],
//!   collecting scans via [`cset::OrderedMap::entries_between`]).
//!
//! Static partitioning loses its wins under a skewed key distribution (one
//! strip saturates while the rest idle), so the layer is also **elastic**:
//!
//! * [`BoundaryRouter`] — the general order-preserving router: explicit
//!   sorted split points instead of a fixed stride;
//! * [`ElasticMap`] — a range-sharded map whose strip layout is published
//!   through an epoch-switched routing-table pointer, so strips can be split
//!   and merged online (readers never block; writers to a migrating strip
//!   are briefly gated; superseded tables are retired through the pluggable
//!   reclamation backend — see the [`elastic`] module docs and DESIGN.md §9);
//! * [`Rebalancer`] / [`RebalancePolicy`] — the load-driven policy that
//!   watches the always-on per-strip tallies ([`Sharded::load_per_shard`],
//!   [`ElasticMap::load_per_shard`]) and splits hot strips / merges cold
//!   neighbours, step-by-step or from a background thread.
//!
//! The benchmark harness measures this layer as experiments **E11** (shard
//! count × thread count × operation mix) and **E18** (skew × rebalancing
//! on/off); see `EXPERIMENTS.md` at the repository root.
//!
//! ## Quick start
//!
//! ```
//! use cset::ConcurrentSet;
//! use lfbst::LfBst;
//! use shard::{HashRouter, Sharded};
//! use std::sync::Arc;
//!
//! // 16 lock-free trees behind one Set facade.
//! let set = Arc::new(Sharded::new(HashRouter::new(16), |_| LfBst::new()));
//! let handles: Vec<_> = (0..4)
//!     .map(|t| {
//!         let set = Arc::clone(&set);
//!         std::thread::spawn(move || {
//!             for i in 0..1000u64 {
//!                 set.insert(t * 1000 + i);
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(set.len(), 4000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod elastic;
pub mod merge;
mod rebalance;
mod router;
mod sharded;

pub use elastic::ElasticMap;
pub use merge::{MergedEntries, MergedKeys};
pub use rebalance::{RebalanceAction, RebalancePolicy, Rebalancer, RebalancerHandle};
pub use router::{BoundaryRouter, HashRouter, OrderedRouter, RangeRouter, ShardRouter};
pub use sharded::{config_name, Sharded, ShardedMap};

pub use cset::{
    ConcurrentMap, ConcurrentSet, MapAsSet, OrderedMap, OrderedSet, PinnedOps, StatsSnapshot,
};

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    use cset::{ConcurrentSet, OrderedSet};
    use lfbst::{Config, LfBst};
    use locked_bst::CoarseLockBst;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use super::*;

    #[test]
    fn routes_every_operation_to_exactly_one_shard() {
        let set = Sharded::new(HashRouter::new(8), |_| LfBst::new());
        for k in 0u64..1_000 {
            assert!(set.insert(k));
            assert!(!set.insert(k), "duplicate insert must fail");
        }
        assert_eq!(set.len(), 1_000);
        // Each key is visible through the facade and lives in its routed shard.
        for k in 0u64..1_000 {
            assert!(set.contains(&k));
            let routed = set.router().route(&k);
            assert!(set.shard(routed).contains(&k));
            for i in 0..set.shard_count() {
                if i != routed {
                    assert!(!set.shard(i).contains(&k), "key {k} leaked into shard {i}");
                }
            }
        }
        for k in 0u64..1_000 {
            assert!(set.remove(&k));
            assert!(!set.remove(&k));
        }
        assert!(set.is_empty());
    }

    #[test]
    fn agrees_with_model_under_random_ops() {
        let set = Sharded::new(HashRouter::new(4), |_| LfBst::new());
        let mut model = BTreeSet::new();
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        for step in 0..30_000 {
            let k: u64 = rng.gen_range(0..400);
            match rng.gen_range(0..3) {
                0 => assert_eq!(set.insert(k), model.insert(k), "insert {k} @ {step}"),
                1 => assert_eq!(set.remove(&k), model.remove(&k), "remove {k} @ {step}"),
                _ => assert_eq!(set.contains(&k), model.contains(&k), "contains {k} @ {step}"),
            }
        }
        assert_eq!(set.len(), model.len());
    }

    #[test]
    fn range_router_scan_matches_model() {
        let set = Sharded::new(RangeRouter::covering(8, 5_000), |_| LfBst::new());
        let mut model = BTreeSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..3_000 {
            let k: u64 = rng.gen_range(0..5_000);
            set.insert(k);
            model.insert(k);
        }
        for _ in 0..200 {
            let a: u64 = rng.gen_range(0..5_000);
            let b: u64 = rng.gen_range(0..5_000);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let expected: Vec<u64> = model.range(lo..hi).copied().collect();
            assert_eq!(set.keys_in_range(lo..hi), expected, "range {lo}..{hi}");
            let expected: Vec<u64> = model.range(lo..=hi).copied().collect();
            assert_eq!(set.keys_in_range(lo..=hi), expected, "range {lo}..={hi}");
        }
        let all: Vec<u64> = model.iter().copied().collect();
        assert_eq!(set.keys_in_range(..), all);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // inverted on purpose: the case under test
    fn inverted_range_is_empty_not_a_panic() {
        // Inverted bounds must behave like every inner implementation (an
        // empty result), not index shards backwards.
        let set = Sharded::new(RangeRouter::covering(4, 100), |_| LfBst::new());
        for k in [5u64, 30, 55, 80, 99] {
            set.insert(k);
        }
        assert_eq!(set.keys_in_range(80..=10), Vec::<u64>::new());
        assert_eq!(set.keys_in_range(90..10), Vec::<u64>::new());
        assert_eq!(LfBst::keys_in_range(set.shard(0), 80..=10), Vec::<u64>::new());
    }

    #[test]
    fn streaming_scan_matches_collecting_scan() {
        let set = Sharded::new(RangeRouter::covering(8, 5_000), |_| LfBst::new());
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..2_000 {
            set.insert(rng.gen_range(0..5_000u64));
        }
        for _ in 0..50 {
            let a: u64 = rng.gen_range(0..5_000);
            let b: u64 = rng.gen_range(0..5_000);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let collected = set.keys_in_range(lo..=hi);
            let streamed: Vec<u64> = set.scan_range(lo..=hi).collect();
            assert_eq!(streamed, collected, "range {lo}..={hi}");
            // Limited pages are prefixes of the full scan.
            let page = set.keys_between_limited(
                std::ops::Bound::Included(&lo),
                std::ops::Bound::Included(&hi),
                7,
            );
            assert_eq!(page, collected[..collected.len().min(7)].to_vec());
        }
    }

    #[test]
    fn successor_queries_cross_shards() {
        let set = Sharded::new(RangeRouter::covering(4, 100), |_| LfBst::new());
        assert_eq!(set.first(), None);
        assert_eq!(set.last(), None);
        assert_eq!(set.next_after(&50), None);
        for k in [5u64, 30, 55, 80] {
            set.insert(k);
        }
        assert_eq!(set.first(), Some(5));
        assert_eq!(set.last(), Some(80));
        // Successors within a shard and across shard boundaries.
        assert_eq!(set.next_after(&5), Some(30));
        assert_eq!(set.next_after(&30), Some(55));
        assert_eq!(set.next_after(&31), Some(55));
        assert_eq!(set.next_after(&80), None);
        // Empty low shards are skipped.
        set.remove(&5);
        assert_eq!(set.first(), Some(30));
    }

    /// An ordered inner set that counts every key its scans hand out, to pin
    /// the merge cursor's bounded-memory/lazy contract.
    struct CountingSet {
        inner: CoarseLockBst<u64>,
        handed_out: Arc<std::sync::atomic::AtomicUsize>,
    }

    impl ConcurrentSet<u64> for CountingSet {
        fn insert(&self, key: u64) -> bool {
            self.inner.insert(key)
        }
        fn remove(&self, key: &u64) -> bool {
            self.inner.remove(key)
        }
        fn contains(&self, key: &u64) -> bool {
            self.inner.contains(key)
        }
        fn len(&self) -> usize {
            ConcurrentSet::len(&self.inner)
        }
        fn name(&self) -> &'static str {
            "counting"
        }
    }

    impl OrderedSet<u64> for CountingSet {
        fn keys_between(&self, lo: std::ops::Bound<&u64>, hi: std::ops::Bound<&u64>) -> Vec<u64> {
            let keys = self.inner.keys_between(lo, hi);
            self.handed_out.fetch_add(keys.len(), Ordering::Relaxed);
            keys
        }
        fn keys_between_limited(
            &self,
            lo: std::ops::Bound<&u64>,
            hi: std::ops::Bound<&u64>,
            limit: usize,
        ) -> Vec<u64> {
            let keys = self.inner.keys_between_limited(lo, hi, limit);
            self.handed_out.fetch_add(keys.len(), Ordering::Relaxed);
            keys
        }
    }

    #[test]
    fn merged_scan_memory_is_bounded_by_shards_plus_page() {
        // 4 shards x 1000 keys; an early-exit scan of 10 keys must not pull
        // the 4000-key result set through the merge.  The inner cursors here
        // are cset's chunked fallbacks, so the worst case is one SCAN_CHUNK
        // page per shard plus the emitted page — the documented bound.
        const SHARDS: usize = 4;
        const PER_SHARD: u64 = 1_000;
        let handed_out = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let set = Sharded::new(RangeRouter::covering(SHARDS, SHARDS as u64 * PER_SHARD), |_| {
            CountingSet { inner: CoarseLockBst::new(), handed_out: Arc::clone(&handed_out) }
        });
        for k in 0..SHARDS as u64 * PER_SHARD {
            set.insert(k);
        }
        handed_out.store(0, Ordering::Relaxed);
        let top: Vec<u64> = set.scan_range(..).take(10).collect();
        assert_eq!(top, (0..10).collect::<Vec<_>>());
        let pulled = handed_out.load(Ordering::Relaxed);
        let bound = SHARDS * cset::SCAN_CHUNK + 10;
        assert!(
            pulled <= bound,
            "early-exit merge pulled {pulled} keys from shards, bound is {bound} \
             (collect-everything would have pulled {})",
            SHARDS as u64 * PER_SHARD
        );
    }

    #[test]
    fn scan_composes_with_locked_inner_sets() {
        // The layer is generic: the same scan works over a lock-based inner set.
        let set = Sharded::new(RangeRouter::covering(4, 100), |_| CoarseLockBst::new());
        for k in [5u64, 30, 55, 80, 99] {
            set.insert(k);
        }
        assert_eq!(set.keys_in_range(10..=90), vec![30, 55, 80]);
        assert_eq!(
            set.keys_between(std::ops::Bound::Unbounded, std::ops::Bound::Excluded(&55)),
            vec![5, 30]
        );
    }

    #[test]
    fn len_is_exact_at_quiescence() {
        // Hammer the sharded set from several threads, join, then check that
        // the aggregated len equals ground truth — the quiescent-sum contract.
        let set = Arc::new(Sharded::new(HashRouter::new(8), |_| LfBst::new()));
        let present = Arc::new((0..512u64).map(|_| AtomicI64::new(0)).collect::<Vec<_>>());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let set = Arc::clone(&set);
                let present = Arc::clone(&present);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..20_000 {
                        let k = rng.gen_range(0..512u64);
                        if rng.gen_bool(0.5) {
                            if set.insert(k) {
                                present[k as usize].fetch_add(1, Ordering::Relaxed);
                            }
                        } else if set.remove(&k) {
                            present[k as usize].fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected: i64 = present.iter().map(|p| p.load(Ordering::Relaxed)).sum();
        assert_eq!(set.len() as i64, expected);
        assert_eq!(set.len_per_shard().iter().sum::<usize>(), set.len());
    }

    #[test]
    fn pinned_ops_forward_through_the_router() {
        // One guard, obtained from the facade, must serve operations routed to
        // every shard, and the guard-based entry points must agree with the
        // plain ones.
        let set = Sharded::new(HashRouter::new(8), |_| LfBst::new());
        let guard = set.op_guard();
        for k in 0u64..2_000 {
            assert!(set.insert_with(k, &guard));
            assert!(!set.insert_with(k, &guard));
        }
        drop(guard);
        assert_eq!(set.len(), 2_000);
        let guard = set.op_guard();
        for k in 0u64..2_000 {
            assert_eq!(set.contains_with(&k, &guard), set.contains(&k));
            if k % 2 == 0 {
                assert!(set.remove_with(&k, &guard));
            }
        }
        drop(guard);
        assert_eq!(set.len(), 1_000);
        // Every shard saw traffic, so forwarding really fanned out.
        assert!(set.len_per_shard().iter().all(|&n| n > 0));
    }

    #[test]
    fn stats_aggregate_across_shards() {
        if !lfbst::stats_compiled() {
            // Counters are compiled out by default; the aggregation contract
            // is exercised by the stats-feature CI job.
            eprintln!("skipping: lfbst built without the `stats` feature");
            return;
        }
        let set = Sharded::new(HashRouter::new(4), |_| {
            LfBst::with_config(Config::new().record_stats(true))
        });
        for k in 0u64..2_000 {
            set.insert(k);
        }
        for k in 0u64..2_000 {
            set.remove(&k);
        }
        let merged = Sharded::stats(&set);
        // Every successful insert performs at least one CAS, and those CASes
        // are spread over the shards; the merge must see them all.
        assert!(merged.cas_successes >= 2_000, "merged CAS count {merged:?}");
        let per_shard: Vec<_> =
            (0..set.shard_count()).map(|i| ConcurrentSet::<u64>::stats(set.shard(i))).collect();
        assert!(per_shard.iter().all(|s| s.cas_successes > 0), "all shards saw traffic");
        assert_eq!(merged.cas_successes, per_shard.iter().map(|s| s.cas_successes).sum::<u64>());
    }

    #[test]
    fn single_shard_behaves_like_inner() {
        let sharded = Sharded::new(HashRouter::new(1), |_| LfBst::new());
        let plain = LfBst::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let k: u64 = rng.gen_range(0..200);
            match rng.gen_range(0..3) {
                0 => assert_eq!(sharded.insert(k), plain.insert(k)),
                1 => assert_eq!(sharded.remove(&k), plain.remove(&k)),
                _ => assert_eq!(sharded.contains(&k), plain.contains(&k)),
            }
        }
        assert_eq!(sharded.len(), plain.len());
    }

    #[test]
    fn map_facade_routes_every_entry_to_exactly_one_shard() {
        let map = ShardedMap::new(HashRouter::new(8), |_| LfBst::<u64, u64>::new());
        for k in 0u64..1_000 {
            assert!(map.insert(k, k * 10));
            assert!(!map.insert(k, k), "duplicate insert must fail and not overwrite");
        }
        assert_eq!(ConcurrentMap::len(&map), 1_000);
        for k in 0u64..1_000 {
            assert_eq!(map.get(&k), Some(k * 10));
            let routed = map.router().route(&k);
            assert_eq!(map.shard(routed).get(&k), Some(k * 10));
        }
        for k in 0u64..1_000 {
            assert_eq!(map.upsert(k, k + 1), Some(k * 10));
            assert_eq!(ConcurrentMap::remove(&map, &k), Some(k + 1));
            assert_eq!(ConcurrentMap::remove(&map, &k), None);
        }
        assert!(ConcurrentMap::is_empty(&map));
    }

    #[test]
    fn map_facade_agrees_with_model_under_random_ops() {
        use std::collections::BTreeMap;
        let map = ShardedMap::new(HashRouter::new(4), |_| LfBst::<u64, u64>::new());
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(0xFACE);
        for step in 0..20_000u64 {
            let k: u64 = rng.gen_range(0..400);
            let v: u64 = rng.gen_range(0..1_000_000);
            match rng.gen_range(0..4) {
                0 => {
                    let expected = match model.entry(k) {
                        std::collections::btree_map::Entry::Occupied(_) => false,
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(v);
                            true
                        }
                    };
                    assert_eq!(map.insert(k, v), expected, "insert {k} @ {step}");
                }
                1 => assert_eq!(map.upsert(k, v), model.insert(k, v), "upsert {k} @ {step}"),
                2 => assert_eq!(
                    ConcurrentMap::remove(&map, &k),
                    model.remove(&k),
                    "remove {k} @ {step}"
                ),
                _ => assert_eq!(map.get(&k), model.get(&k).copied(), "get {k} @ {step}"),
            }
        }
        assert_eq!(ConcurrentMap::len(&map), model.len());
    }

    #[test]
    fn map_facade_ordered_scan_matches_model() {
        use std::collections::BTreeMap;
        use std::ops::Bound;
        let map = ShardedMap::new(RangeRouter::covering(8, 5_000), |_| LfBst::<u64, u64>::new());
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..3_000 {
            let k: u64 = rng.gen_range(0..5_000);
            map.upsert(k, k * 3);
            model.insert(k, k * 3);
        }
        for _ in 0..100 {
            let a: u64 = rng.gen_range(0..5_000);
            let b: u64 = rng.gen_range(0..5_000);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let expected: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(
                map.entries_between(Bound::Included(&lo), Bound::Included(&hi)),
                expected,
                "range {lo}..={hi}"
            );
        }
        let all: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(map.entries_between(Bound::Unbounded, Bound::Unbounded), all);
    }

    #[test]
    fn map_facade_composes_with_the_locked_oracle() {
        let map = ShardedMap::new(RangeRouter::covering(4, 100), |_| {
            locked_bst::CoarseLockMap::<u64, String>::new()
        });
        for k in [5u64, 30, 55, 80] {
            map.insert(k, format!("v{k}"));
        }
        assert_eq!(map.get(&30).as_deref(), Some("v30"));
        assert_eq!(map.name(), "coarse-mutex-btreemapx4-range");
        let entries =
            map.entries_between(std::ops::Bound::Included(&10), std::ops::Bound::Excluded(&80));
        assert_eq!(entries, vec![(30, "v30".to_string()), (55, "v55".to_string())]);
    }

    #[test]
    fn names_encode_configuration() {
        let a = Sharded::new(HashRouter::new(4), |_| LfBst::<u64>::new());
        let b = Sharded::new(RangeRouter::covering(16, 100), |_| LfBst::new());
        assert_eq!(a.name(), "lfbstx4-hash");
        assert_eq!(b.name(), "lfbstx16-range");
        // Interning: the same configuration yields the same static pointer.
        let c = Sharded::new(HashRouter::new(4), |_| LfBst::<u64>::new());
        assert!(std::ptr::eq(a.name(), c.name()));
    }

    #[test]
    fn concurrent_mixed_load_accounting() {
        // Per-key accounting across threads, the same invariant the workspace
        // conformance battery checks, applied to the sharded facade.
        let set: Arc<Sharded<LfBst<u64>, RangeRouter>> =
            Arc::new(Sharded::new(RangeRouter::covering(8, 256), |_| LfBst::new()));
        let balance = Arc::new((0..256u64).map(|_| AtomicI64::new(0)).collect::<Vec<_>>());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let set = Arc::clone(&set);
                let balance = Arc::clone(&balance);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBEEF ^ t);
                    for _ in 0..15_000 {
                        let k = rng.gen_range(0..256u64);
                        match rng.gen_range(0..10) {
                            0..=3 => {
                                if set.insert(k) {
                                    balance[k as usize].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            4..=7 => {
                                if set.remove(&k) {
                                    balance[k as usize].fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                set.contains(&k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut expected = 0usize;
        for k in 0..256u64 {
            let b = balance[k as usize].load(Ordering::Relaxed);
            assert!(b == 0 || b == 1, "impossible balance {b} for key {k}");
            assert_eq!(set.contains(&k), b == 1, "membership mismatch for {k}");
            expected += b as usize;
        }
        assert_eq!(set.len(), expected);
        // Order-preserving router: the full scan is strictly ascending.
        let scan = set.keys_in_range(..);
        assert!(scan.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(scan.len(), expected);
    }

    #[test]
    fn load_counters_account_for_every_point_op() {
        let set = Sharded::new(RangeRouter::covering(4, 1_024), |_| LfBst::new());
        for k in 0u64..1_024 {
            set.insert(k);
        }
        for k in (0u64..1_024).step_by(2) {
            set.contains(&k);
        }
        for k in (0u64..1_024).step_by(4) {
            set.remove(&k);
        }
        let loads = set.load_per_shard();
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.iter().sum::<u64>(), 1_024 + 512 + 256);
        // Uniform keys over an order-preserving router: every strip saw its
        // exact share.
        assert!(loads.iter().all(|&l| l == (1_024 + 512 + 256) / 4), "{loads:?}");
        // take_loads drains the window; load_per_shard alone does not.
        assert_eq!(set.load_per_shard(), loads);
        assert_eq!(set.take_loads(), loads);
        assert_eq!(set.load_per_shard(), vec![0; 4]);

        let map = ShardedMap::new(RangeRouter::covering(2, 64), |_| {
            locked_bst::CoarseLockMap::<u64, String>::new()
        });
        map.insert(1, "a".into());
        map.upsert(40, "b".into());
        map.get(&1);
        map.contains_key(&40);
        map.remove(&1);
        assert_eq!(map.load_per_shard(), vec![3, 2]);
        assert_eq!(map.take_loads(), vec![3, 2]);
        assert_eq!(map.load_per_shard(), vec![0, 0]);
    }
}
