//! [`ElasticMap`]: a range-sharded map whose routing table can be **replaced
//! online** — the epoch-switched core of elastic sharding.
//!
//! A static [`ShardedMap`](crate::ShardedMap) fixes its strips at
//! construction; under a skewed key distribution one strip saturates while
//! the rest idle, losing both of sharding's wins (contention isolation and
//! `log(n/N)` search paths).  `ElasticMap` keeps the same
//! "one tree per contiguous key strip" shape but publishes the strip layout
//! through an atomic pointer to an immutable routing `Table`, so a
//! background rebalancer can split a hot strip (or merge cold neighbours)
//! and swing the pointer — an *epoch switch*:
//!
//! * **Readers never block.**  A read pins its reclamation guard, loads the
//!   table, routes, and reads the strip's tree.  If a rebalance retires that
//!   table mid-read, the guard keeps the table (and, through `Arc`s, the
//!   tree) alive; the read linearizes at its table load.
//! * **Writers are briefly gated.**  A migration must hand the *final* state
//!   of the old tree to the replacement trees, so the cutover freezes writes
//!   to the affected strip(s) only: a writer registers itself in the strip's
//!   in-flight counter and re-validates the table pointer (both seqcst, see
//!   `ElasticMap::with_write`); the migrator publishes a `blocked` table,
//!   waits for registered writers to drain, reconciles the replacement trees
//!   against the now-frozen old tree, and publishes the final table.  Writers
//!   that meet a blocked strip spin briefly and land on the new trees.
//!   Writes to *other* strips are completely unaffected — their `Strip`
//!   objects are shared (`Arc`) between the old and new tables.
//! * **Old state is retired, not leaked.**  Superseded tables go through the
//!   pluggable [`Reclaimer`] (`defer_destroy`, backend-generic: EBR or IBR);
//!   drained trees are dropped when the last retired table and the last
//!   in-flight scan release their `Arc`s.
//!
//! See `DESIGN.md` §9 for the full protocol and its safety argument.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam_epoch::{Atomic, Ebr, Owned, ReclaimGuard, Reclaimer, Shared};
use cset::{ConcurrentMap, LoadTally, OrderedMap, StatsSnapshot};

use crate::sharded::config_name;

/// The survival predicate `retain_range` threads into the strip teardown
/// (`None` = clear everything, i.e. `remove_range`).
type StripKeepFn<'a, V> = &'a (dyn Fn(&u64, &V) -> bool + Sync);

/// One key strip: a tree plus its load tally and in-flight writer count.
///
/// Strips are shared by `Arc` between successive routing tables, so a
/// rebalance of strip `i` leaves every other strip's tree, tally, and gate
/// *identical* in the new table — load history survives the switch and
/// writers on unaffected strips never notice it.
struct Strip<S> {
    tree: Arc<S>,
    /// Always-on relaxed op tally (reads and writes), the rebalancer's signal.
    hits: Arc<LoadTally>,
    /// Writers currently inside `tree`'s mutating call — the cutover gate.
    writers: Arc<AtomicU64>,
}

impl<S> Strip<S> {
    fn new(tree: Arc<S>) -> Self {
        Strip { tree, hits: Arc::new(LoadTally::new()), writers: Arc::new(AtomicU64::new(0)) }
    }
}

impl<S> Clone for Strip<S> {
    fn clone(&self) -> Self {
        Strip {
            tree: Arc::clone(&self.tree),
            hits: Arc::clone(&self.hits),
            writers: Arc::clone(&self.writers),
        }
    }
}

/// An immutable routing table: the unit the epoch switch publishes.
///
/// Strip `i` covers the half-open interval `[bounds[i - 1], bounds[i])`
/// (reading `bounds[-1]` as `0` and the missing last bound as past `u64::MAX`)
/// — exactly a [`BoundaryRouter`](crate::BoundaryRouter) with one tree
/// attached per strip.
struct Table<S> {
    /// `strips.len() - 1` strictly ascending split points.
    bounds: Vec<u64>,
    strips: Vec<Strip<S>>,
    /// Inclusive strip interval currently under cutover: writes routed there
    /// must retry on the successor table.
    blocked: Option<(usize, usize)>,
}

impl<S> Table<S> {
    #[inline]
    fn route(&self, key: u64) -> usize {
        self.bounds.partition_point(|b| *b <= key)
    }

    #[inline]
    fn is_blocked(&self, strip: usize) -> bool {
        matches!(self.blocked, Some((lo, hi)) if strip >= lo && strip <= hi)
    }

    /// Inclusive lower key of `strip`.
    fn strip_lower(&self, strip: usize) -> u64 {
        if strip == 0 {
            0
        } else {
            self.bounds[strip - 1]
        }
    }

    /// Exclusive upper key of `strip`, or `None` for the last strip.
    fn strip_upper(&self, strip: usize) -> Option<u64> {
        self.bounds.get(strip).copied()
    }
}

/// A range-sharded concurrent map with an **online-rebalanceable** strip
/// layout, generic over the reclamation backend `R` (EBR by default, IBR via
/// the type parameter) like the trees it shards.
///
/// `ElasticMap` implements [`ConcurrentMap`] and [`OrderedMap`] for `u64`
/// keys; per-key linearizability of the inner trees lifts to the whole map
/// *across* rebalances (the migration protocol in the module docs).  Split
/// and merge are usually driven by a [`Rebalancer`](crate::Rebalancer), but
/// [`split`](Self::split) / [`merge`](Self::merge) are public for direct use.
///
/// # Examples
///
/// ```
/// use cset::ConcurrentMap;
/// use lfbst::LfBst;
/// use shard::ElasticMap;
///
/// // Four equal strips over the keys 0..1000, lock-free trees underneath.
/// let map: ElasticMap<_> = ElasticMap::covering(4, 1000, || LfBst::<u64, u64>::new());
/// assert!(map.insert(7, 70));
/// assert_eq!(map.get(&7), Some(70));
///
/// // Split the first strip at key 100 — contents are preserved.
/// assert!(map.split(0, 100));
/// assert_eq!(map.shard_count(), 5);
/// assert_eq!(map.get(&7), Some(70));
/// ```
pub struct ElasticMap<S, R: Reclaimer = Ebr> {
    table: Atomic<Table<S>>,
    /// Constructor for fresh strip trees (migration targets).
    make: Box<dyn Fn() -> S + Send + Sync>,
    name: &'static str,
    /// Completed split/merge epoch switches.
    rebalances: AtomicU64,
    /// Serializes rebalances; point operations never take it.
    migrate: Mutex<()>,
    _backend: PhantomData<R>,
}

impl<S, R: Reclaimer> ElasticMap<S, R> {
    /// Creates a map with explicit initial split points (see
    /// [`BoundaryRouter::new`](crate::BoundaryRouter::new) for the bounds
    /// contract) and a constructor for strip trees.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly ascending or starts at `0`.
    pub fn with_boundaries<V>(
        bounds: Vec<u64>,
        make: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self
    where
        S: ConcurrentMap<u64, V>,
    {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.first() != Some(&0),
            "split points must be strictly ascending and non-zero"
        );
        let strips: Vec<Strip<S>> =
            (0..=bounds.len()).map(|_| Strip::new(Arc::new(make()))).collect();
        let name = config_name(strips[0].tree.name(), strips.len(), "elastic");
        ElasticMap {
            table: Atomic::new(Table { bounds, strips, blocked: None }),
            make: Box::new(make),
            name,
            rebalances: AtomicU64::new(0),
            migrate: Mutex::new(()),
            _backend: PhantomData,
        }
    }

    /// Creates a map with `shards` equal-width strips over `[0, span)`
    /// (high keys land in the last strip), the elastic twin of
    /// [`RangeRouter::covering`](crate::RangeRouter::covering).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `span == 0`.
    pub fn covering<V>(
        shards: usize,
        span: u64,
        make: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self
    where
        S: ConcurrentMap<u64, V>,
    {
        let bounds = crate::BoundaryRouter::covering(shards, span).bounds().to_vec();
        Self::with_boundaries(bounds, make)
    }

    /// The current number of strips.
    pub fn shard_count(&self) -> usize {
        let guard = R::pin();
        unsafe { self.table.load(Ordering::Acquire, &guard).deref() }.strips.len()
    }

    /// The current split points, strictly ascending (`shard_count() - 1`).
    pub fn boundaries(&self) -> Vec<u64> {
        let guard = R::pin();
        unsafe { self.table.load(Ordering::Acquire, &guard).deref() }.bounds.clone()
    }

    /// Per-strip op tallies since construction or the last
    /// [`take_loads`](Self::take_loads), in strip order.
    pub fn load_per_shard(&self) -> Vec<u64> {
        let guard = R::pin();
        let t = unsafe { self.table.load(Ordering::Acquire, &guard).deref() };
        t.strips.iter().map(|s| s.hits.get()).collect()
    }

    /// Reads **and resets** the per-strip tallies — the rebalancer's windowed
    /// load sample.
    pub fn take_loads(&self) -> Vec<u64> {
        let guard = R::pin();
        let t = unsafe { self.table.load(Ordering::Acquire, &guard).deref() };
        t.strips.iter().map(|s| s.hits.take()).collect()
    }

    /// Completed rebalances (splits + merges) since construction.
    pub fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    /// Routes a point operation that only **reads** its strip.
    ///
    /// Reads ignore the `blocked` latch on purpose: during a cutover the old
    /// tree is frozen for writes (the gate drained) and the replacement trees
    /// are reconciled to equal it exactly, so reading the old tree stays
    /// linearizable — the read's linearization point is its table load.
    #[inline]
    fn with_read<T>(&self, key: u64, op: impl FnOnce(&S) -> T) -> T {
        let guard = R::pin();
        let t = unsafe { self.table.load(Ordering::Acquire, &guard).deref() };
        let strip = &t.strips[t.route(key)];
        strip.hits.bump();
        op(&strip.tree)
    }

    /// Routes a point operation that **mutates** its strip, through the
    /// cutover gate.
    ///
    /// The gate is a seqlock-style handshake with [`await_writers`]: the
    /// writer registers in the strip's in-flight counter and then re-loads
    /// the table pointer; the migrator swaps the pointer and then reads the
    /// counter.  All four accesses are seqcst, so in the total order either
    /// the registration precedes the migrator's read (the migrator waits for
    /// this writer to finish on the old tree) or the swap precedes the
    /// re-load (the writer observes the blocked table, deregisters, and
    /// retries on the successor) — a write can never land on a tree the
    /// migrator has already reconciled.  Acquire/release alone would allow
    /// the classic store-buffer anomaly (both sides reading the old value)
    /// and lose the write.
    ///
    /// `op` runs exactly once, on the tree the write is guaranteed to own.
    #[inline]
    fn with_write<T>(&self, key: u64, mut op: impl FnMut(&S) -> T) -> T {
        let mut attempts = 0u32;
        loop {
            {
                let guard = R::pin();
                let shared = self.table.load(Ordering::Acquire, &guard);
                let t = unsafe { shared.deref() };
                let idx = t.route(key);
                if !t.is_blocked(idx) {
                    let strip = &t.strips[idx];
                    strip.writers.fetch_add(1, Ordering::SeqCst);
                    let reread = self.table.load(Ordering::SeqCst, &guard);
                    // The guard pins `shared`'s table, so its address cannot
                    // be recycled while we compare: pointer equality really
                    // means "still the published table".
                    if reread.as_raw() == shared.as_raw() {
                        strip.hits.bump();
                        let out = op(&strip.tree);
                        strip.writers.fetch_sub(1, Ordering::Release);
                        return out;
                    }
                    strip.writers.fetch_sub(1, Ordering::Release);
                }
            }
            // Blocked (or switched under us): back off outside the pin so the
            // migrator's guard is not the only one holding the epoch back.
            attempts += 1;
            if attempts < 32 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Spins until every writer registered on `strip` has deregistered.
    ///
    /// Called after the blocked table is published: combined with the seqcst
    /// handshake in [`with_write`](Self::with_write), returning means no
    /// writer is inside — or can ever re-enter — the strip's tree, and every
    /// completed write is visible (the deregistering `fetch_sub(Release)`
    /// pairs with this seqcst load).
    fn await_writers(strip: &Strip<S>) {
        let mut attempts = 0u32;
        while strip.writers.load(Ordering::SeqCst) != 0 {
            attempts += 1;
            if attempts < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Splits strip `strip_idx` at `pivot`, publishing a table with one more
    /// strip.  Returns `false` (and does nothing) if the index is stale or
    /// the pivot does not fall strictly inside the strip — the validation
    /// that makes racing policy decisions harmless.
    ///
    /// The three phases (bulk copy concurrent with writers; gated cutover +
    /// reconcile; publish) are described in the module docs.
    pub fn split<V>(&self, strip_idx: usize, pivot: u64) -> bool
    where
        S: OrderedMap<u64, V>,
        V: PartialEq,
    {
        let _serialize = self.migrate.lock().expect("rebalance lock poisoned");
        let (old, bounds0, strips0) = {
            let guard = R::pin();
            let t0 = unsafe { self.table.load(Ordering::Acquire, &guard).deref() };
            if strip_idx >= t0.strips.len()
                || pivot <= t0.strip_lower(strip_idx)
                || t0.strip_upper(strip_idx).is_some_and(|u| pivot >= u)
            {
                return false;
            }
            (t0.strips[strip_idx].clone(), t0.bounds.clone(), t0.strips.clone())
        };

        // Phase 1 — bulk copy through the streaming cursor while writers
        // continue on the old tree.  The replacements are private until
        // publication, so plain inserts cannot conflict; the median-first
        // load keeps them height-balanced despite the sorted source.
        let left = Arc::new((self.make)());
        let right = Arc::new((self.make)());
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        for (k, v) in cset::chunked_scan_entries(&*old.tree, Bound::Unbounded, Bound::Unbounded) {
            if k < pivot { &mut lo } else { &mut hi }.push((k, v));
        }
        balanced_load(&*left, lo);
        balanced_load(&*right, hi);

        // Phase 2 — cutover: block the strip, drain its writers, reconcile
        // the (now bounded) drift the concurrent phase accumulated.
        let guard = R::pin();
        let blocked = Table {
            bounds: bounds0.clone(),
            strips: strips0.clone(),
            blocked: Some((strip_idx, strip_idx)),
        };
        let prev = self.table.swap(Owned::new(blocked), Ordering::SeqCst, &guard);
        unsafe { guard.defer_destroy(prev) };
        Self::await_writers(&old);
        reconcile(
            cset::chunked_scan_entries(&*old.tree, Bound::Unbounded, Bound::Unbounded),
            chain_entries(&[&*left, &*right]),
            &[(Some(pivot), &*left), (None, &*right)],
        );

        // Phase 3 — publish the split layout; the old tree leaves the table
        // and is dropped once the retired tables and in-flight scans release
        // their Arcs.
        let mut bounds = bounds0;
        bounds.insert(strip_idx, pivot);
        let mut strips = strips0;
        strips[strip_idx] = Strip::new(left);
        strips.insert(strip_idx + 1, Strip::new(right));
        let t2 = Table { bounds, strips, blocked: None };
        let prev = self.table.swap(Owned::new(t2), Ordering::SeqCst, &guard);
        unsafe { guard.defer_destroy(prev) };
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Merges strips `left_idx` and `left_idx + 1` into one, publishing a
    /// table with one fewer strip.  Returns `false` if the index is stale.
    ///
    /// Same protocol as [`split`](Self::split) with two source strips: both
    /// are blocked and drained before the reconcile.
    pub fn merge<V>(&self, left_idx: usize) -> bool
    where
        S: OrderedMap<u64, V>,
        V: PartialEq,
    {
        let _serialize = self.migrate.lock().expect("rebalance lock poisoned");
        let (a, b, bounds0, strips0) = {
            let guard = R::pin();
            let t0 = unsafe { self.table.load(Ordering::Acquire, &guard).deref() };
            if left_idx + 1 >= t0.strips.len() {
                return false;
            }
            (
                t0.strips[left_idx].clone(),
                t0.strips[left_idx + 1].clone(),
                t0.bounds.clone(),
                t0.strips.clone(),
            )
        };

        // Phase 1 — bulk copy both strips (adjacent, so chaining the two
        // ascending cursors yields one sorted run for the balanced load).
        let merged = Arc::new((self.make)());
        let mut run = Vec::new();
        for src in [&a, &b] {
            run.extend(cset::chunked_scan_entries(&*src.tree, Bound::Unbounded, Bound::Unbounded));
        }
        balanced_load(&*merged, run);

        // Phase 2 — cutover over both strips.
        let guard = R::pin();
        let blocked = Table {
            bounds: bounds0.clone(),
            strips: strips0.clone(),
            blocked: Some((left_idx, left_idx + 1)),
        };
        let prev = self.table.swap(Owned::new(blocked), Ordering::SeqCst, &guard);
        unsafe { guard.defer_destroy(prev) };
        Self::await_writers(&a);
        Self::await_writers(&b);
        reconcile(
            chain_entries(&[&*a.tree, &*b.tree]),
            cset::chunked_scan_entries(&*merged, Bound::Unbounded, Bound::Unbounded),
            &[(None, &*merged)],
        );

        // Phase 3 — publish the merged layout.
        let mut bounds = bounds0;
        bounds.remove(left_idx);
        let mut strips = strips0;
        strips[left_idx] = Strip::new(merged);
        strips.remove(left_idx + 1);
        let t2 = Table { bounds, strips, blocked: None };
        let prev = self.table.swap(Owned::new(t2), Ordering::SeqCst, &guard);
        unsafe { guard.defer_destroy(prev) };
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A split point for `strip_idx`: the midpoint of the strip's *populated*
    /// key span, which repeated splits shrink geometrically around a hot
    /// region.  `None` if the strip holds fewer than two distinct keys (there
    /// is nothing to split).
    pub fn split_pivot<V>(&self, strip_idx: usize) -> Option<u64>
    where
        S: OrderedMap<u64, V>,
        V: PartialEq,
    {
        let tree = {
            let guard = R::pin();
            let t = unsafe { self.table.load(Ordering::Acquire, &guard).deref() };
            Arc::clone(&t.strips.get(strip_idx)?.tree)
        };
        let first = tree.first_entry()?.0;
        let last = tree.last_entry()?.0;
        if first >= last {
            return None;
        }
        // In (first, last]: both sides keep at least one present key, and the
        // pivot stays strictly inside the strip's bounds.
        Some(first + (last - first).div_ceil(2))
    }

    /// Per-strip quiescent sizes, in strip order.
    pub fn len_per_shard<V>(&self) -> Vec<usize>
    where
        S: ConcurrentMap<u64, V>,
    {
        let trees = self.snapshot_trees(Bound::Unbounded, Bound::Unbounded);
        trees.iter().map(|t| t.len()).collect()
    }

    /// Clones out the strip trees covering `[lo, hi]` under a short pin.
    ///
    /// Scans run over this owned snapshot, so they never extend a pin across
    /// user iteration and keep the PR 5 weak-consistency contract across a
    /// rebalance: keys present for the whole scan in the *captured* trees
    /// appear; entries migrated into strips created after the capture are
    /// concurrent updates and may be missed.
    fn snapshot_trees(&self, lo: Bound<&u64>, hi: Bound<&u64>) -> Vec<Arc<S>> {
        let guard = R::pin();
        let t = unsafe { self.table.load(Ordering::Acquire, &guard).deref() };
        let first = match lo {
            Bound::Unbounded => 0,
            Bound::Included(k) | Bound::Excluded(k) => t.route(*k),
        };
        let last = match hi {
            Bound::Unbounded => t.strips.len() - 1,
            Bound::Included(k) | Bound::Excluded(k) => t.route(*k),
        };
        t.strips[first..=last].iter().map(|s| Arc::clone(&s.tree)).collect()
    }

    /// The whole-strip teardown behind the map facade's bulk mutations.
    ///
    /// Strips **fully covered** by `[lo, hi]` are not drained key by key:
    /// they are replaced wholesale through the same blocked-table cutover a
    /// rebalance uses — publish a table with the covered run blocked, drain
    /// its writers, then publish a final table whose covered strips hold
    /// fresh (empty, or pre-filtered and reconciled) trees.  The strip
    /// layout (`bounds`) never changes, only the trees; the old trees leave
    /// the table and are dropped when the retired tables and in-flight scans
    /// release their `Arc`s — one bulk drop instead of a removal-protocol
    /// run per key.  Boundary strips the range only clips fall back to their
    /// trees' own streaming sweeps (linearizable per key, no epoch switch).
    fn teardown_range<V>(
        &self,
        lo: Bound<&u64>,
        hi: Bound<&u64>,
        keep: Option<StripKeepFn<'_, V>>,
    ) -> usize
    where
        S: OrderedMap<u64, V>,
        V: PartialEq,
    {
        if cset::range_is_empty(&lo, &hi) {
            return 0;
        }
        let _serialize = self.migrate.lock().expect("rebalance lock poisoned");
        let (bounds0, strips0, first, last) = {
            let guard = R::pin();
            let t = unsafe { self.table.load(Ordering::Acquire, &guard).deref() };
            let first = match lo {
                Bound::Unbounded => 0,
                Bound::Included(k) | Bound::Excluded(k) => t.route(*k),
            };
            let last = match hi {
                Bound::Unbounded => t.strips.len() - 1,
                Bound::Included(k) | Bound::Excluded(k) => t.route(*k),
            };
            (t.bounds.clone(), t.strips.clone(), first, last)
        };
        let strip_lower = |i: usize| if i == 0 { 0 } else { bounds0[i - 1] };
        let strip_upper = |i: usize| bounds0.get(i).copied();
        // Strip `i` covers `[lower, upper)`; it is fully covered when every
        // key in that interval falls inside `[lo, hi]`.  Split points are
        // non-zero, so `u - 1` cannot underflow.
        let covered = |i: usize| {
            let lo_ok = match lo {
                Bound::Unbounded => true,
                Bound::Included(k) => *k <= strip_lower(i),
                Bound::Excluded(k) => *k < strip_lower(i),
            };
            let hi_ok = match (hi, strip_upper(i)) {
                (Bound::Unbounded, _) => true,
                (Bound::Included(k), None) => *k == u64::MAX,
                (Bound::Excluded(_), None) => false,
                (Bound::Included(k), Some(u)) => *k >= u - 1,
                (Bound::Excluded(k), Some(u)) => *k >= u,
            };
            lo_ok && hi_ok
        };
        let full: Vec<usize> = (first..=last).filter(|&i| covered(i)).collect();
        let mut removed = 0usize;

        if let (Some(&f0), Some(&f1)) = (full.first(), full.last()) {
            // One contiguous range over contiguous strips: the covered strips
            // form one middle run, with at most one clipped strip per edge.
            debug_assert_eq!(full.len(), f1 - f0 + 1, "covered strips form one contiguous run");

            // Phase 1 (filtered swap only) — pre-copy each covered strip's
            // survivors into a fresh balanced tree while writers continue on
            // the old trees; a plain range delete swaps in empty trees and
            // skips this entirely.
            let replacements: Vec<Arc<S>> = (f0..=f1)
                .map(|i| {
                    let fresh = Arc::new((self.make)());
                    if let Some(keep) = keep {
                        let survivors: Vec<(u64, V)> = cset::chunked_scan_entries(
                            &*strips0[i].tree,
                            Bound::Unbounded,
                            Bound::Unbounded,
                        )
                        .filter(|(k, v)| keep(k, v))
                        .collect();
                        balanced_load(&*fresh, survivors);
                    }
                    fresh
                })
                .collect();

            // Phase 2 — cutover: block the covered run, drain its writers,
            // then settle each replacement against its now-frozen source.
            let guard = R::pin();
            let blocked =
                Table { bounds: bounds0.clone(), strips: strips0.clone(), blocked: Some((f0, f1)) };
            let prev = self.table.swap(Owned::new(blocked), Ordering::SeqCst, &guard);
            unsafe { guard.defer_destroy(prev) };
            for strip in &strips0[f0..=f1] {
                Self::await_writers(strip);
            }
            for (i, fresh) in (f0..=f1).zip(&replacements) {
                let old = &strips0[i].tree;
                match keep {
                    // The strip is frozen, so its quiescent count is exactly
                    // what the swap evicts.
                    None => removed += old.len(),
                    Some(keep) => {
                        let dropped = std::cell::Cell::new(0usize);
                        let oracle =
                            cset::chunked_scan_entries(&**old, Bound::Unbounded, Bound::Unbounded)
                                .filter(|(k, v)| {
                                    let kept = keep(k, v);
                                    if !kept {
                                        dropped.set(dropped.get() + 1);
                                    }
                                    kept
                                });
                        reconcile(
                            oracle,
                            cset::chunked_scan_entries(
                                &**fresh,
                                Bound::Unbounded,
                                Bound::Unbounded,
                            ),
                            &[(None, &**fresh)],
                        );
                        removed += dropped.get();
                    }
                }
            }

            // Phase 3 — publish the swapped strips; the split points are
            // untouched, so routing is unchanged and only the covered trees
            // move.
            let mut strips = strips0.clone();
            for (i, fresh) in (f0..=f1).zip(replacements) {
                strips[i] = Strip::new(fresh);
            }
            let t2 = Table { bounds: bounds0.clone(), strips, blocked: None };
            let prev = self.table.swap(Owned::new(t2), Ordering::SeqCst, &guard);
            unsafe { guard.defer_destroy(prev) };
        }

        // Boundary strips the range only clips: stream-sweep them through
        // the trees themselves (the same trees live writers use, so per-key
        // linearizability is the trees' own).
        for i in (first..=last).filter(|&i| !covered(i)) {
            let tree = &strips0[i].tree;
            removed += match keep {
                None => tree.remove_range(lo, hi),
                Some(keep) => tree.retain_range(lo, hi, keep),
            };
        }
        removed
    }
}

impl<S, R: Reclaimer> Drop for ElasticMap<S, R> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): the unprotected guard destroys the
        // table immediately; the strips' Arcs drop the trees.
        unsafe {
            let guard = R::unprotected();
            let t = self.table.swap(Shared::null(), Ordering::SeqCst, guard);
            if !t.is_null() {
                guard.defer_destroy(t);
            }
        }
    }
}

impl<S, R: Reclaimer> fmt::Debug for ElasticMap<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElasticMap")
            .field("name", &self.name)
            .field("backend", &R::NAME)
            .field("rebalances", &self.rebalances.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Bulk-loads a sorted entry run into a fresh tree median-first, recursing
/// into each half, so the replacement comes out height-balanced.  The
/// paper's BST does no rebalancing: feeding the cursor's ascending stream
/// straight into `insert` would degenerate the new tree into a linked list,
/// making every post-migration search O(strip size) — strictly worse than
/// the tree being replaced, and the opposite of what a split is for.
fn balanced_load<S, V>(tree: &S, entries: Vec<(u64, V)>)
where
    S: ConcurrentMap<u64, V>,
{
    let mut entries: Vec<Option<(u64, V)>> = entries.into_iter().map(Some).collect();
    let mut stack = vec![(0usize, entries.len())];
    while let Some((lo, hi)) = stack.pop() {
        if lo >= hi {
            continue;
        }
        let mid = lo + (hi - lo) / 2;
        let (k, v) = entries[mid].take().expect("each slot is visited exactly once");
        tree.insert(k, v);
        stack.push((lo, mid));
        stack.push((mid + 1, hi));
    }
}

/// Chains bounded-page cursors over several key-disjoint, ascending trees —
/// the "old side" stream reconciliation walks for a merge.
fn chain_entries<'a, S, V>(trees: &[&'a S]) -> impl Iterator<Item = (u64, V)> + 'a
where
    S: OrderedMap<u64, V>,
    V: 'a,
{
    let cursors: Vec<_> = trees
        .iter()
        .map(|t| cset::chunked_scan_entries(*t, Bound::Unbounded, Bound::Unbounded))
        .collect();
    cursors.into_iter().flatten()
}

/// Makes the target trees' contents exactly equal `oracle` (the frozen old
/// strip state) given `current` (their present contents): both streams are
/// ascending, so one sorted merge-walk inserts the missing keys, removes the
/// extra ones, and re-upserts values that drifted during the concurrent copy
/// phase.  `targets` is a boundary-routed list: a key goes to the first entry
/// whose exclusive upper bound (if any) exceeds it.
fn reconcile<S, V>(
    oracle: impl Iterator<Item = (u64, V)>,
    current: impl Iterator<Item = (u64, V)>,
    targets: &[(Option<u64>, &S)],
) where
    S: ConcurrentMap<u64, V>,
    V: PartialEq,
{
    let pick = |k: u64| {
        targets
            .iter()
            .find(|(upper, _)| upper.map_or(true, |u| k < u))
            .expect("reconcile targets must cover the key space")
            .1
    };
    let mut oracle = oracle.peekable();
    let mut current = current.peekable();
    loop {
        let ordering = match (oracle.peek(), current.peek()) {
            (None, None) => break,
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (Some((ka, _)), Some((kb, _))) => ka.cmp(kb),
        };
        match ordering {
            std::cmp::Ordering::Less => {
                // Missed by the copy (inserted into the old tree after the
                // cursor passed): add it.
                let (k, v) = oracle.next().expect("peeked");
                pick(k).insert(k, v);
            }
            std::cmp::Ordering::Greater => {
                // Copied but later removed from the old tree: take it out.
                let (k, _) = current.next().expect("peeked");
                pick(k).remove(&k);
            }
            std::cmp::Ordering::Equal => {
                // Present in both; re-upsert only if the value drifted.
                let (k, v) = oracle.next().expect("peeked");
                let (_, cur) = current.next().expect("peeked");
                if cur != v {
                    pick(k).upsert(k, v);
                }
            }
        }
    }
}

impl<V, S, R> ConcurrentMap<u64, V> for ElasticMap<S, R>
where
    S: OrderedMap<u64, V>,
    V: PartialEq + Send + Sync,
    R: Reclaimer,
{
    #[inline]
    fn insert(&self, key: u64, value: V) -> bool {
        let mut value = Some(value);
        self.with_write(key, |tree| tree.insert(key, value.take().expect("op runs once")))
    }

    #[inline]
    fn get(&self, key: &u64) -> Option<V> {
        self.with_read(*key, |tree| tree.get(key))
    }

    #[inline]
    fn upsert(&self, key: u64, value: V) -> Option<V> {
        let mut value = Some(value);
        self.with_write(key, |tree| tree.upsert(key, value.take().expect("op runs once")))
    }

    #[inline]
    fn remove(&self, key: &u64) -> Option<V> {
        self.with_write(*key, |tree| tree.remove(key))
    }

    #[inline]
    fn contains_key(&self, key: &u64) -> bool {
        self.with_read(*key, |tree| tree.contains_key(key))
    }

    /// Sum of the per-strip quiescent counts (the [`StatsSnapshot::merge`]
    /// contract).
    fn len(&self) -> usize {
        self.snapshot_trees(Bound::Unbounded, Bound::Unbounded).iter().map(|t| t.len()).sum()
    }

    /// The label of the **initial** configuration (`innerxN-elastic`); the
    /// live strip count moves with rebalancing, the label does not.
    fn name(&self) -> &'static str {
        self.name
    }

    fn stats(&self) -> StatsSnapshot {
        self.snapshot_trees(Bound::Unbounded, Bound::Unbounded).iter().map(|t| t.stats()).sum()
    }
}

impl<V, S, R> OrderedMap<u64, V> for ElasticMap<S, R>
where
    S: OrderedMap<u64, V>,
    V: PartialEq + Send + Sync,
    R: Reclaimer,
{
    /// A streaming scan over the strips captured at call time: strips are
    /// key-disjoint and ascending, so concatenating their bounded-page
    /// cursors yields one globally ascending scan with no k-way merge.  The
    /// capture is what lets a scan span a rebalance — see
    /// `ElasticMap::snapshot_trees` for the consistency
    /// contract.
    fn scan_entries<'a>(&'a self, lo: Bound<&u64>, hi: Bound<&u64>) -> cset::EntryCursor<'a, u64, V>
    where
        V: 'a,
    {
        if cset::range_is_empty(&lo, &hi) {
            return Box::new(std::iter::empty());
        }
        let trees = self.snapshot_trees(lo, hi);
        Box::new(ElasticScan {
            trees,
            tree_idx: 0,
            lo: lo.cloned(),
            hi: hi.cloned(),
            last_key: None,
            page: Vec::new().into_iter(),
            chunk: cset::SCAN_CHUNK,
        })
    }

    /// Concatenates per-strip bulk scans over the captured trees (disjoint
    /// and ascending, as above).
    fn entries_between(&self, lo: Bound<&u64>, hi: Bound<&u64>) -> Vec<(u64, V)> {
        if cset::range_is_empty(&lo, &hi) {
            return Vec::new();
        }
        let trees = self.snapshot_trees(lo, hi);
        let mut out = Vec::new();
        for tree in &trees {
            out.extend(tree.entries_between(lo, hi));
        }
        out
    }

    fn entries_between_limited(
        &self,
        lo: Bound<&u64>,
        hi: Bound<&u64>,
        limit: usize,
    ) -> Vec<(u64, V)> {
        self.scan_entries(lo, hi).take(limit).collect()
    }

    fn first_entry(&self) -> Option<(u64, V)> {
        let trees = self.snapshot_trees(Bound::Unbounded, Bound::Unbounded);
        trees.iter().find_map(|t| t.first_entry())
    }

    fn last_entry(&self) -> Option<(u64, V)> {
        let trees = self.snapshot_trees(Bound::Unbounded, Bound::Unbounded);
        trees.iter().rev().find_map(|t| t.last_entry())
    }

    fn next_entry_after(&self, key: &u64) -> Option<(u64, V)> {
        let trees = self.snapshot_trees(Bound::Included(key), Bound::Unbounded);
        trees.iter().find_map(|t| t.next_entry_after(key))
    }

    /// Whole-strip fast path: strips fully covered by the range are swapped
    /// for fresh empty trees through the epoch-switched cutover (one bulk
    /// drop instead of per-key removal-protocol runs); clipped boundary
    /// strips fall back to their trees' streaming sweeps.  See
    /// `ElasticMap::teardown_range`.
    fn remove_range(&self, lo: Bound<&u64>, hi: Bound<&u64>) -> usize {
        self.teardown_range(lo, hi, None)
    }

    /// Same fast path with a filter: covered strips get a pre-filtered,
    /// reconciled replacement tree; boundary strips stream-sweep.
    fn retain_range(
        &self,
        lo: Bound<&u64>,
        hi: Bound<&u64>,
        keep: &(dyn Fn(&u64, &V) -> bool + Sync),
    ) -> usize {
        self.teardown_range(lo, hi, Some(keep))
    }
}

/// The owning cursor behind [`ElasticMap`]'s `scan_entries`: pages through
/// the captured strip trees with the same bounded-pin discipline as
/// [`cset::chunked_scan_entries`], but holds its trees by `Arc` so the scan
/// survives the routing table that produced it being retired.
struct ElasticScan<S, V> {
    trees: Vec<Arc<S>>,
    tree_idx: usize,
    lo: Bound<u64>,
    hi: Bound<u64>,
    /// Highest key already yielded; the next page starts strictly above it.
    last_key: Option<u64>,
    page: std::vec::IntoIter<(u64, V)>,
    /// Doubles after every full page, up to [`cset::SCAN_CHUNK_MAX`].
    chunk: usize,
}

impl<S, V> Iterator for ElasticScan<S, V>
where
    S: OrderedMap<u64, V>,
{
    type Item = (u64, V);

    fn next(&mut self) -> Option<(u64, V)> {
        loop {
            if let Some((k, v)) = self.page.next() {
                self.last_key = Some(k);
                return Some((k, v));
            }
            let tree = self.trees.get(self.tree_idx)?;
            let lo = match self.last_key {
                Some(k) => Bound::Excluded(k),
                None => self.lo,
            };
            let fetched = tree.entries_between_limited(lo.as_ref(), self.hi.as_ref(), self.chunk);
            if fetched.len() < self.chunk {
                // This strip is drained (past `last_key`); move on.  Strips
                // are disjoint and ascending, so `last_key` keeps advancing
                // monotonically across them.
                self.tree_idx += 1;
            } else {
                self.chunk = (self.chunk * 2).min(cset::SCAN_CHUNK_MAX);
            }
            self.page = fetched.into_iter();
            if self.page.len() == 0 && self.tree_idx >= self.trees.len() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering as AtOrd};
    use std::thread;
    use std::time::{Duration, Instant};

    use cset::ConcurrentMap;
    use lfbst::{Ibr, LfBst};
    use locked_bst::CoarseLockMap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use super::*;

    fn new_map(shards: usize, span: u64) -> ElasticMap<LfBst<u64, u64>> {
        ElasticMap::covering(shards, span, LfBst::new)
    }

    /// Spins until at least one rebalance has completed (failing after 30 s
    /// rather than hanging) — the `switches > 0` assertions stay meaningful
    /// without being timing-flaky on a loaded machine where a migration can
    /// outlast the test's fixed workload.
    fn await_first_rebalance(rebalances: impl Fn() -> u64) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while rebalances() == 0 {
            assert!(Instant::now() < deadline, "no rebalance completed in 30s");
            thread::yield_now();
        }
    }

    /// Spawns a thread that alternates splits and merges as fast as the map
    /// allows, maximizing router switches under the test workload.
    fn spawn_flipper<S, R>(
        map: Arc<ElasticMap<S, R>>,
        stop: Arc<AtomicBool>,
    ) -> thread::JoinHandle<u64>
    where
        S: OrderedMap<u64, u64> + 'static,
        R: Reclaimer,
    {
        thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x51DE);
            let mut switches = 0u64;
            while !stop.load(AtOrd::Acquire) {
                let n = map.shard_count();
                if n > 1 && rng.gen_bool(0.5) {
                    if map.merge(rng.gen_range(0..n - 1)) {
                        switches += 1;
                    }
                } else {
                    let idx = rng.gen_range(0..n);
                    if let Some(pivot) = map.split_pivot(idx) {
                        if map.split(idx, pivot) {
                            switches += 1;
                        }
                    }
                }
            }
            switches
        })
    }

    #[test]
    fn split_and_merge_preserve_contents() {
        let map = new_map(2, 1 << 12);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(0xE1A5);
        for round in 0..8u64 {
            for _ in 0..500 {
                let k = rng.gen_range(0..1u64 << 12);
                if rng.gen_bool(0.7) {
                    assert_eq!(map.upsert(k, k ^ round), model.insert(k, k ^ round));
                } else {
                    assert_eq!(map.remove(&k), model.remove(&k));
                }
            }
            // Alternate growing and shrinking the table.
            if round % 2 == 0 {
                let idx = rng.gen_range(0..map.shard_count());
                if let Some(pivot) = map.split_pivot(idx) {
                    assert!(map.split(idx, pivot));
                }
            } else if map.shard_count() > 1 {
                assert!(map.merge(0));
            }
            let bounds = map.boundaries();
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds stay ascending");
            assert_eq!(bounds.len() + 1, map.shard_count());
            let scanned = map.entries_between(Bound::Unbounded, Bound::Unbounded);
            let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(scanned, expected, "contents diverged after round {round}");
            assert_eq!(map.len(), model.len());
            let per_strip: usize = map.len_per_shard::<u64>().iter().sum();
            assert_eq!(per_strip, model.len());
        }
        assert!(map.rebalances() >= 8);
    }

    #[test]
    fn split_and_merge_reject_stale_or_degenerate_decisions() {
        let map = new_map(2, 1_000);
        // Out-of-range strip indices.
        assert!(!map.split(7, 100));
        assert!(!map.merge(1), "merge left index must have a right neighbor");
        assert!(!map.merge(9));
        // A pivot outside the strip's key range (strip 1 covers [500, inf)).
        assert!(!map.split(1, 100));
        // A pivot equal to the strip's lower bound would create an empty strip.
        assert!(!map.split(1, 500));
        // No pivot exists for a strip with fewer than two distinct keys.
        assert_eq!(map.split_pivot::<u64>(0), None);
        map.insert(3, 3);
        assert_eq!(map.split_pivot::<u64>(0), None);
        map.insert(9, 9);
        let pivot = map.split_pivot::<u64>(0).expect("two keys give a pivot");
        assert!(pivot > 3 && pivot <= 9);
        assert!(map.split(0, pivot));
        assert_eq!(map.shard_count(), 3);
        assert_eq!(map.get(&3), Some(3));
        assert_eq!(map.get(&9), Some(9));
    }

    #[test]
    fn ibr_backend_splits_and_merges() {
        let map: ElasticMap<LfBst<u64, u64, Ibr>, Ibr> =
            ElasticMap::covering(2, 1_000, LfBst::new_in);
        for k in 0..1_000u64 {
            assert!(map.insert(k, k * 2));
        }
        assert!(map.split(0, 250));
        assert!(map.merge(1));
        assert_eq!(map.len(), 1_000);
        for k in (0..1_000u64).step_by(97) {
            assert_eq!(map.get(&k), Some(k * 2));
        }
    }

    /// A scan cursor opened before a rebalance must page straight through the
    /// router switch: the captured strips are frozen by `Arc`, so the page
    /// sequence stays exactly the capture-time contents, sorted.
    #[test]
    fn scan_page_spans_a_router_switch() {
        let map = new_map(2, 1_000);
        for k in 0..1_000u64 {
            map.insert(k, k);
        }
        let mut cursor = map.scan_entries(Bound::Unbounded, Bound::Unbounded);
        let mut seen: Vec<u64> = (&mut cursor).take(10).map(|(k, _)| k).collect();
        // Split the strip the cursor is currently paging through, then merge
        // the far end: two full epoch switches mid-scan.
        assert!(map.split(0, 123));
        assert!(map.merge(map.shard_count() - 2));
        // Post-capture writes must not corrupt the in-flight page sequence.
        map.insert(2_000, 2_000);
        map.remove(&700);
        seen.extend(cursor.map(|(k, _)| k));
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "scan stays strictly ascending");
        // The capture predates both the insert and the remove, and captured
        // trees are only written through the cutover gate the scan does not
        // hold — so the scan yields exactly the capture-time keys.
        assert_eq!(seen, (0..1_000u64).collect::<Vec<_>>());
        drop(map);
    }

    /// ISSUE 9 acceptance: per-key results stay linearizable across router
    /// switches.  Each thread owns a disjoint congruence class of keys and
    /// mirrors every operation on a coarse-locked oracle; since nobody else
    /// touches its keys, the return values must agree op-for-op even while a
    /// background thread splits and merges strips continuously.
    fn oracle_conformance_under_rebalance<R: Reclaimer>() {
        const THREADS: u64 = 4;
        const SPAN: u64 = 1 << 12;
        let map: Arc<ElasticMap<LfBst<u64, u64, R>, R>> =
            Arc::new(ElasticMap::covering(4, SPAN, LfBst::new_in));
        let oracle: Arc<CoarseLockMap<u64, u64>> = Arc::new(CoarseLockMap::new());
        let stop = Arc::new(AtomicBool::new(false));
        let flipper = spawn_flipper(Arc::clone(&map), Arc::clone(&stop));

        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let map = Arc::clone(&map);
                let oracle = Arc::clone(&oracle);
                thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xACE0 + t);
                    for i in 0..6_000u64 {
                        let k = rng.gen_range(0..SPAN / THREADS) * THREADS + t;
                        let v = i;
                        match rng.gen_range(0..10u8) {
                            0..=2 => assert_eq!(
                                map.insert(k, v),
                                oracle.insert(k, v),
                                "insert({k}) diverged on {}",
                                R::NAME
                            ),
                            3..=4 => assert_eq!(
                                map.upsert(k, v),
                                oracle.upsert(k, v),
                                "upsert({k}) diverged on {}",
                                R::NAME
                            ),
                            5..=6 => assert_eq!(
                                map.remove(&k),
                                oracle.remove(&k),
                                "remove({k}) diverged on {}",
                                R::NAME
                            ),
                            7..=8 => assert_eq!(
                                map.get(&k),
                                oracle.get(&k),
                                "get({k}) diverged on {}",
                                R::NAME
                            ),
                            _ => assert_eq!(
                                map.contains_key(&k),
                                oracle.contains_key(&k),
                                "contains_key({k}) diverged on {}",
                                R::NAME
                            ),
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        await_first_rebalance(|| map.rebalances());
        stop.store(true, AtOrd::Release);
        let switches = flipper.join().unwrap();
        assert!(switches > 0, "the rebalancer thread never managed a switch");

        // Quiescent final state: exact agreement, both by point reads and by
        // one full ascending scan.
        assert_eq!(map.len(), oracle.len());
        let scanned = map.entries_between(Bound::Unbounded, Bound::Unbounded);
        assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(scanned.len(), oracle.len());
        for (k, v) in scanned {
            assert_eq!(oracle.get(&k), Some(v), "stray key {k} on {}", R::NAME);
        }
    }

    #[test]
    fn oracle_conformance_under_rebalance_ebr() {
        oracle_conformance_under_rebalance::<crossbeam_epoch::Ebr>();
    }

    #[test]
    fn oracle_conformance_under_rebalance_ibr() {
        oracle_conformance_under_rebalance::<crossbeam_epoch::Ibr>();
    }

    /// Scan residue invariants (mirroring the PR 5 churn tests) while a
    /// rebalancer switches tables underneath: keys in the always-present
    /// class appear in every scan, never-inserted keys in none, and every
    /// scan is strictly ascending — weak consistency never shows phantoms.
    #[test]
    fn scan_residue_invariants_survive_live_rebalance() {
        const SPAN: u64 = 2_048;
        let map = Arc::new(new_map(4, SPAN));
        for k in (3..SPAN).step_by(4) {
            map.insert(k, k); // class 3 mod 4: present for the whole test
        }
        let stop = Arc::new(AtomicBool::new(false));
        let flipper = spawn_flipper(Arc::clone(&map), Arc::clone(&stop));
        let churners: Vec<_> = [0u64, 2]
            .into_iter()
            .map(|class| {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(class);
                    while !stop.load(AtOrd::Acquire) {
                        let k = rng.gen_range(0..SPAN / 4) * 4 + class;
                        if rng.gen_bool(0.5) {
                            map.upsert(k, k);
                        } else {
                            map.remove(&k);
                        }
                    }
                })
            })
            .collect();

        // At least 40 scans, and keep scanning until a rebalance actually
        // completed underneath one (migrations race the churners and can
        // outlast 40 scans on a loaded machine) — with a deadline so a
        // wedged rebalancer fails the test instead of hanging it.
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut scans = 0u32;
        while scans < 40 || map.rebalances() == 0 {
            assert!(Instant::now() < deadline, "no rebalance completed in 30s");
            let keys: Vec<u64> =
                map.scan_entries(Bound::Unbounded, Bound::Unbounded).map(|(k, _)| k).collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "scan must stay strictly ascending");
            assert!(keys.iter().all(|k| k % 4 != 1), "phantom key from the never-inserted class");
            let present: Vec<u64> = keys.iter().copied().filter(|k| k % 4 == 3).collect();
            let expected: Vec<u64> = (3..SPAN).step_by(4).collect();
            assert_eq!(present, expected, "an always-present key went missing mid-rebalance");
            scans += 1;
        }
        stop.store(true, AtOrd::Release);
        for c in churners {
            c.join().unwrap();
        }
        assert!(flipper.join().unwrap() > 0);
    }

    /// Contended-key accounting across continuous rebalances: every
    /// successful insert/remove transition is tallied, so a write lost in a
    /// cutover (landing on an already-reconciled tree) breaks the balance.
    #[test]
    fn no_write_is_lost_across_cutovers() {
        const KEYS: u64 = 64;
        let map = Arc::new(new_map(2, KEYS));
        let stop = Arc::new(AtomicBool::new(false));
        let flipper = spawn_flipper(Arc::clone(&map), Arc::clone(&stop));
        let balance: Arc<Vec<AtomicI64>> = Arc::new((0..KEYS).map(|_| AtomicI64::new(0)).collect());
        let workers: Vec<_> = (0..4u64)
            .map(|t| {
                let map = Arc::clone(&map);
                let balance = Arc::clone(&balance);
                thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xB0B + t);
                    for _ in 0..10_000 {
                        let k = rng.gen_range(0..KEYS);
                        if rng.gen_bool(0.5) {
                            if map.insert(k, k) {
                                balance[k as usize].fetch_add(1, AtOrd::Relaxed);
                            }
                        } else if map.remove(&k).is_some() {
                            balance[k as usize].fetch_sub(1, AtOrd::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        await_first_rebalance(|| map.rebalances());
        stop.store(true, AtOrd::Release);
        assert!(flipper.join().unwrap() > 0);
        let mut expected = 0usize;
        for k in 0..KEYS {
            let b = balance[k as usize].load(AtOrd::Relaxed);
            assert!(b == 0 || b == 1, "impossible balance {b} for key {k}");
            assert_eq!(map.contains_key(&k), b == 1, "membership mismatch for key {k}");
            expected += b as usize;
        }
        assert_eq!(map.len(), expected);
    }

    /// Whole-strip teardown: a range covering strips 1 and 2 of four swaps
    /// them for empty trees through the cutover (observable as rebalance-free
    /// table switches leaving the boundaries intact) while the clipped edge
    /// strips are swept in place.
    #[test]
    fn strip_teardown_swaps_covered_strips_and_sweeps_the_edges() {
        let map = new_map(4, 1_000); // strips [0,250) [250,500) [500,750) [750,..)
        for k in 0..1_000u64 {
            map.insert(k, k);
        }
        let removed = OrderedMap::remove_range(&map, Bound::Included(&100), Bound::Excluded(&800));
        assert_eq!(removed, 700);
        assert_eq!(map.len(), 300);
        assert_eq!(map.boundaries(), vec![250, 500, 750], "teardown never moves split points");
        let left: Vec<u64> =
            map.entries_between(Bound::Unbounded, Bound::Unbounded).iter().map(|e| e.0).collect();
        assert_eq!(left, (0..100).chain(800..1_000).collect::<Vec<_>>());
        // The map stays fully writable after the swap.
        assert!(map.insert(400, 4));
        assert_eq!(map.get(&400), Some(4));
        // A full-span teardown clears every strip by pure swaps.
        assert_eq!(OrderedMap::remove_range(&map, Bound::Unbounded, Bound::Unbounded), 301);
        assert!(map.is_empty());
    }

    /// Filtered swap: a retain sweep over fully covered strips publishes
    /// pre-filtered replacement trees whose contents equal the frozen
    /// source filtered by the predicate.
    #[test]
    fn strip_teardown_retain_filters_covered_strips() {
        let map = new_map(4, 1_000);
        for k in 0..1_000u64 {
            map.insert(k, k);
        }
        let removed = map.retain_range(Bound::Unbounded, Bound::Excluded(&500), &|k, _| k % 2 == 0);
        assert_eq!(removed, 250);
        assert_eq!(map.len(), 750);
        assert!((0..500u64).all(|k| map.contains_key(&k) == (k % 2 == 0)));
        assert!((500..1_000u64).all(|k| map.contains_key(&k)));
        // Inverted bounds stay a no-op, matching the workspace contract.
        assert_eq!(OrderedMap::remove_range(&map, Bound::Included(&600), Bound::Included(&10)), 0);
        assert_eq!(map.len(), 750);
    }

    /// Teardown under write pressure: concurrent single-key writers on the
    /// covered strips either land before the cutover (and die with the strip)
    /// or retry onto the replacement trees — the per-key insert/remove
    /// balance never breaks.
    #[test]
    fn strip_teardown_races_with_writers() {
        const SPAN: u64 = 1_024;
        let map = Arc::new(new_map(4, SPAN));
        for k in 0..SPAN {
            map.insert(k, k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..3u64)
            .map(|t| {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x7EA8 + t);
                    while !stop.load(AtOrd::Acquire) {
                        let k = rng.gen_range(0..SPAN);
                        if rng.gen_bool(0.5) {
                            map.upsert(k, k);
                        } else {
                            map.remove(&k);
                        }
                    }
                })
            })
            .collect();
        for _ in 0..20 {
            OrderedMap::remove_range(&*map, Bound::Unbounded, Bound::Unbounded);
        }
        stop.store(true, AtOrd::Release);
        for w in writers {
            w.join().unwrap();
        }
        // Quiescent sanity: scans agree with point reads after the storm.
        let scanned = map.entries_between(Bound::Unbounded, Bound::Unbounded);
        assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(scanned.len(), map.len());
        for (k, v) in scanned {
            assert_eq!(map.get(&k), Some(v));
        }
    }

    #[test]
    fn load_tallies_track_ops_and_survive_foreign_splits() {
        let map = new_map(2, 1_000);
        for _ in 0..100 {
            map.get(&10); // strip 0
        }
        for k in 600..650u64 {
            map.insert(k, k); // strip 1
        }
        assert_eq!(map.load_per_shard(), vec![100, 50]);
        // Splitting strip 1 replaces its tally but must not disturb strip 0's
        // (the strip is shared by `Arc` across the table switch).
        assert!(map.split(1, 625));
        let loads = map.load_per_shard();
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[0], 100, "untouched strip's tally survives the switch");
        let taken = map.take_loads();
        assert_eq!(taken[0], 100);
        assert_eq!(map.load_per_shard(), vec![0, 0, 0], "take_loads resets the window");
    }
}
