//! Key-to-shard routing policies.
//!
//! A [`ShardRouter`] maps every key to one of `N` shard indices.  Two
//! policies are provided:
//!
//! * [`HashRouter`] — spreads keys uniformly by hashing.  Best load balance
//!   under skewed key popularity, but destroys key order across shards.
//! * [`RangeRouter`] — partitions a `u64` key space into `N` contiguous
//!   ranges.  Shard `i` holds a key interval strictly below shard `i + 1`'s,
//!   so a cross-shard ordered scan is a concatenation of per-shard scans
//!   (the router implements [`OrderedRouter`]).

use std::hash::{Hash, Hasher};

/// Maps keys to shard indices.
///
/// Implementations must be pure: the same key always routes to the same shard
/// index, and every returned index is `< shard_count()`.
pub trait ShardRouter<K>: Send + Sync {
    /// The number of shards this router targets.
    fn shard_count(&self) -> usize;

    /// The shard index for `key`, in `0..shard_count()`.
    fn route(&self, key: &K) -> usize;

    /// A short static label used in benchmark row names (`"hash"`, `"range"`).
    fn policy_name(&self) -> &'static str;
}

/// Marker for routers whose mapping is **monotone** in the key order:
/// `a <= b` implies `route(a) <= route(b)`.
///
/// Monotonicity is what makes cross-shard ordered scans possible: all keys in
/// `[lo, hi]` live in the contiguous shard interval `[route(lo), route(hi)]`,
/// and concatenating the per-shard ascending scans in shard order yields one
/// globally ascending scan.
pub trait OrderedRouter<K>: ShardRouter<K> {}

/// A fast, fixed-key multiply-xor hasher (FxHash-style).
///
/// Routing runs on every operation, so the standard `DefaultHasher` (SipHash)
/// would tax the hot path; this hasher is two multiplies per word and is more
/// than uniform enough for shard selection.
#[derive(Default)]
struct FxHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so that low-entropy keys (sequential integers)
        // spread over the full 64-bit range before shard reduction.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Routes by hashing the key: uniform spread, order-destroying.
///
/// # Examples
///
/// ```
/// use shard::{HashRouter, ShardRouter};
///
/// let r = HashRouter::new(16);
/// assert_eq!(ShardRouter::<u64>::shard_count(&r), 16);
/// assert!(r.route(&42u64) < 16);
/// assert_eq!(r.route(&42u64), r.route(&42u64));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct HashRouter {
    shards: usize,
}

impl HashRouter {
    /// Creates a router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        HashRouter { shards }
    }
}

impl<K: Hash> ShardRouter<K> for HashRouter {
    #[inline]
    fn shard_count(&self) -> usize {
        self.shards
    }

    #[inline]
    fn route(&self, key: &K) -> usize {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // Multiply-shift reduction: unbiased for power-of-two shard counts and
        // near-unbiased otherwise, without a divide.
        ((h.finish() as u128 * self.shards as u128) >> 64) as usize
    }

    fn policy_name(&self) -> &'static str {
        "hash"
    }
}

/// Routes `u64` keys by contiguous range: order-preserving.
///
/// The key space `[0, span)` is divided into `shards` equal-width contiguous
/// strips; keys at or above `span` (if any) land in the last shard, keeping
/// the mapping total and monotone.
///
/// # Examples
///
/// ```
/// use shard::{OrderedRouter, RangeRouter, ShardRouter};
///
/// // Partition the keys 0..1000 over 4 shards of width 250.
/// let r = RangeRouter::covering(4, 1000);
/// assert_eq!(r.route(&0u64), 0);
/// assert_eq!(r.route(&249u64), 0);
/// assert_eq!(r.route(&250u64), 1);
/// assert_eq!(r.route(&999u64), 3);
/// // Monotone: ordered scans can concatenate shard scans.
/// fn assert_ordered<R: OrderedRouter<u64>>(_r: &R) {}
/// assert_ordered(&r);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RangeRouter {
    shards: usize,
    /// Width of each shard's key strip.
    stride: u64,
}

impl RangeRouter {
    /// Creates a router partitioning the **full** `u64` key space.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        Self::covering(shards, u64::MAX)
    }

    /// Creates a router partitioning `[0, span)` into `shards` equal strips.
    ///
    /// Use this when the workload's key range is known (as in the benchmark
    /// harness): partitioning only the populated span keeps all shards loaded
    /// instead of leaving high shards empty.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `span == 0`.
    pub fn covering(shards: usize, span: u64) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(span > 0, "key span must be non-empty");
        let stride = (span / shards as u64).max(1);
        RangeRouter { shards, stride }
    }

    /// The width of each shard's key strip.
    pub fn stride(&self) -> u64 {
        self.stride
    }
}

impl ShardRouter<u64> for RangeRouter {
    #[inline]
    fn shard_count(&self) -> usize {
        self.shards
    }

    #[inline]
    fn route(&self, key: &u64) -> usize {
        ((key / self.stride) as usize).min(self.shards - 1)
    }

    fn policy_name(&self) -> &'static str {
        "range"
    }
}

impl OrderedRouter<u64> for RangeRouter {}

/// Routes `u64` keys by an **explicit sorted boundary vector**: the general
/// form of [`RangeRouter`], and the routing table elastic sharding rebalances.
///
/// `bounds` holds `shards - 1` strictly ascending split points; shard `i`
/// covers the half-open strip `[bounds[i - 1], bounds[i])` (with `bounds[-1]`
/// read as `0` and `bounds[shards - 1]` as `u64::MAX + 1`).  Routing is a
/// binary search (`partition_point`), so arbitrary — including heavily
/// lopsided — strip widths cost `O(log N)` instead of forcing equal strides.
///
/// # Examples
///
/// ```
/// use shard::{BoundaryRouter, OrderedRouter, ShardRouter};
///
/// // Three strips: [0, 10), [10, 1000), [1000, u64::MAX].
/// let r = BoundaryRouter::new(vec![10, 1000]);
/// assert_eq!(r.shard_count(), 3);
/// assert_eq!(r.route(&9u64), 0);
/// assert_eq!(r.route(&10u64), 1);
/// assert_eq!(r.route(&u64::MAX), 2);
///
/// // Equal-width construction matches RangeRouter::covering.
/// let even = BoundaryRouter::covering(4, 1000);
/// assert_eq!(even.route(&249u64), 0);
/// assert_eq!(even.route(&250u64), 1);
///
/// fn assert_ordered<R: OrderedRouter<u64>>(_r: &R) {}
/// assert_ordered(&r);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryRouter {
    bounds: Vec<u64>,
}

impl BoundaryRouter {
    /// Creates a router from `shards - 1` strictly ascending split points.
    ///
    /// An empty vector is the trivial single-shard router.
    ///
    /// # Panics
    ///
    /// Panics if the split points are not strictly ascending, or if any is
    /// `0` (which would make the first strip empty).
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "split points must be strictly ascending");
        assert!(bounds.first() != Some(&0), "a split point of 0 would make strip 0 empty");
        BoundaryRouter { bounds }
    }

    /// Creates `shards` equal-width strips over `[0, span)`, the boundary
    /// form of [`RangeRouter::covering`] (keys at or above `span` land in the
    /// last strip).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `span == 0`.
    pub fn covering(shards: usize, span: u64) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(span > 0, "key span must be non-empty");
        let stride = (span / shards as u64).max(1);
        // Strides of width `stride` until the span (or u64 range) runs out;
        // a narrow span degenerates gracefully to fewer-than-asked strips of
        // width >= 1, mirroring RangeRouter's `.min(shards - 1)` clamp.
        let bounds: Vec<u64> = (1..shards as u64)
            .map(|i| i.saturating_mul(stride))
            .take_while(|b| *b < span)
            .collect();
        BoundaryRouter { bounds }
    }

    /// The split points, strictly ascending (`shard_count() - 1` of them).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }
}

impl ShardRouter<u64> for BoundaryRouter {
    #[inline]
    fn shard_count(&self) -> usize {
        self.bounds.len() + 1
    }

    #[inline]
    fn route(&self, key: &u64) -> usize {
        self.bounds.partition_point(|b| *b <= *key)
    }

    fn policy_name(&self) -> &'static str {
        "boundary"
    }
}

impl OrderedRouter<u64> for BoundaryRouter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_router_is_total_and_stable() {
        let r = HashRouter::new(7);
        for k in 0u64..10_000 {
            let s = r.route(&k);
            assert!(s < 7);
            assert_eq!(s, r.route(&k), "routing must be deterministic");
        }
    }

    #[test]
    fn hash_router_spreads_sequential_keys() {
        // Sequential integer keys (the workload generator's key space) must
        // not clump: every shard should receive within 2x of its fair share.
        let shards = 16;
        let r = HashRouter::new(shards);
        let n = 64_000u64;
        let mut counts = vec![0u64; shards];
        for k in 0..n {
            counts[ShardRouter::<u64>::route(&r, &k)] += 1;
        }
        let fair = n / shards as u64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > fair / 2 && c < fair * 2,
                "shard {i} got {c} of {n} keys (fair share {fair})"
            );
        }
    }

    #[test]
    fn hash_router_generic_over_key_types() {
        let r = HashRouter::new(4);
        assert!(r.route(&"some-key") < 4);
        assert!(r.route(&(17u32, 3u8)) < 4);
    }

    #[test]
    fn range_router_is_monotone() {
        let r = RangeRouter::covering(8, 1 << 16);
        let mut last = 0;
        for k in (0u64..(1 << 16)).step_by(97) {
            let s = r.route(&k);
            assert!(s >= last, "monotonicity violated at key {k}");
            assert!(s < 8);
            last = s;
        }
        assert_eq!(r.route(&0), 0);
        assert_eq!(r.route(&((1 << 16) - 1)), 7);
    }

    #[test]
    fn range_router_full_space_covers_extremes() {
        let r = RangeRouter::new(4);
        assert_eq!(r.route(&0), 0);
        assert_eq!(r.route(&u64::MAX), 3);
    }

    #[test]
    fn range_router_out_of_span_keys_land_in_last_shard() {
        let r = RangeRouter::covering(4, 100);
        assert_eq!(r.route(&1_000_000), 3);
    }

    #[test]
    fn range_router_balances_uniform_span() {
        let shards = 4;
        let r = RangeRouter::covering(shards, 4_000);
        let mut counts = vec![0u64; shards];
        for k in 0..4_000u64 {
            counts[r.route(&k)] += 1;
        }
        assert_eq!(counts, vec![1_000; 4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_rejected() {
        let _ = HashRouter::new(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_rejected_for_range() {
        let _ = RangeRouter::covering(0, 10);
    }

    #[test]
    fn single_shard_routers_are_trivial() {
        let h = HashRouter::new(1);
        let r = RangeRouter::covering(1, 1 << 20);
        for k in [0u64, 17, u64::MAX] {
            assert_eq!(ShardRouter::<u64>::route(&h, &k), 0);
            assert_eq!(r.route(&k), 0);
        }
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ShardRouter::<u64>::policy_name(&HashRouter::new(2)), "hash");
        assert_eq!(RangeRouter::new(2).policy_name(), "range");
        assert_eq!(BoundaryRouter::new(vec![7]).policy_name(), "boundary");
    }

    #[test]
    fn boundary_router_routes_by_partition() {
        let r = BoundaryRouter::new(vec![10, 1000, 5000]);
        assert_eq!(r.shard_count(), 4);
        assert_eq!(r.route(&0), 0);
        assert_eq!(r.route(&9), 0);
        assert_eq!(r.route(&10), 1);
        assert_eq!(r.route(&999), 1);
        assert_eq!(r.route(&1000), 2);
        assert_eq!(r.route(&4999), 2);
        assert_eq!(r.route(&5000), 3);
        assert_eq!(r.route(&u64::MAX), 3);
    }

    #[test]
    fn boundary_router_is_monotone() {
        let r = BoundaryRouter::new(vec![3, 17, 18, 4096, 70_000]);
        let mut last = 0;
        for k in (0u64..100_000).step_by(13) {
            let s = r.route(&k);
            assert!(s >= last, "monotonicity violated at key {k}");
            assert!(s < r.shard_count());
            last = s;
        }
    }

    #[test]
    fn boundary_covering_matches_range_router() {
        for (shards, span) in [(4, 1000u64), (8, 1 << 16), (3, 7), (1, 100)] {
            let b = BoundaryRouter::covering(shards, span);
            let r = RangeRouter::covering(shards, span);
            assert_eq!(b.shard_count(), shards);
            for k in
                (0..span).step_by((span as usize / 97).max(1)).chain([0, span - 1, span, span + 5])
            {
                assert_eq!(b.route(&k), r.route(&k), "key {k} (shards {shards}, span {span})");
            }
        }
    }

    #[test]
    fn boundary_covering_degenerates_without_empty_strips() {
        // More shards than keys: strips shrink to the span, never empty.
        let b = BoundaryRouter::covering(16, 4);
        assert_eq!(b.shard_count(), 4);
        assert_eq!(b.bounds(), &[1, 2, 3]);
    }

    #[test]
    fn boundary_empty_bounds_is_single_shard() {
        let b = BoundaryRouter::new(Vec::new());
        assert_eq!(b.shard_count(), 1);
        assert_eq!(b.route(&0), 0);
        assert_eq!(b.route(&u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn boundary_rejects_unsorted_bounds() {
        let _ = BoundaryRouter::new(vec![10, 10]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn boundary_rejects_zero_split() {
        let _ = BoundaryRouter::new(vec![0, 10]);
    }
}
