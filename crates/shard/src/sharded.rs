//! The [`Sharded`] wrapper: one logical set backed by many inner sets.

use std::collections::HashMap;
use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::Mutex;

use cset::{ConcurrentMap, ConcurrentSet, OrderedMap, OrderedSet, PinnedOps, StatsSnapshot};

use crate::router::{OrderedRouter, ShardRouter};

/// Interns a shard configuration label so [`ConcurrentSet::name`] can return
/// `&'static str`.  One short string leaks per **distinct** configuration
/// (inner name × shard count × policy), which is bounded and tiny.
///
/// Exposed so harnesses labelling result rows use the exact same string a
/// [`Sharded`] of that configuration reports from `name()`.
///
/// # Examples
///
/// ```
/// assert_eq!(shard::config_name("lfbst", 4, "hash"), "lfbstx4-hash");
/// ```
pub fn config_name(inner: &'static str, shards: usize, policy: &'static str) -> &'static str {
    static NAMES: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let key = format!("{inner}x{shards}-{policy}");
    let mut guard = NAMES.lock().expect("shard name table poisoned");
    let table = guard.get_or_insert_with(HashMap::new);
    if let Some(&name) = table.get(&key) {
        return name;
    }
    let leaked: &'static str = Box::leak(key.clone().into_boxed_str());
    table.insert(key, leaked);
    leaked
}

/// A key-space-partitioned concurrent set.
///
/// `Sharded` owns a boxed slice of inner sets and a [`ShardRouter`]; every
/// operation is forwarded to the shard the router selects for its key.  Since
/// each key always lands on the same shard, per-key linearizability of the
/// inner sets lifts directly to the whole: `Sharded` is a linearizable Set
/// whenever its inner sets are.
///
/// What sharding buys:
///
/// * **Contention isolation** — the upper levels of a single tree are a shared
///   hot path touched by every operation; with `N` shards an operation only
///   contends with the `1/N` of traffic routed to its shard.
/// * **Smaller structures** — each shard holds `1/N` of the keys, shortening
///   search paths (`log(n/N)` vs `log n`).
///
/// Cross-shard aggregate queries (`len`, [`stats`](Sharded::stats)) sum
/// shard-local values; see [`StatsSnapshot::merge`] for the exact/monotone
/// contract of such sums.  With an order-preserving router
/// ([`OrderedRouter`], e.g. [`RangeRouter`](crate::RangeRouter)), ordered
/// range scans remain available and are served by concatenating per-shard
/// scans in shard order — see [`Sharded::keys_in_range`].
///
/// # Examples
///
/// ```
/// use cset::ConcurrentSet;
/// use shard::{HashRouter, Sharded};
/// use std::collections::BTreeSet;
/// use std::sync::Mutex;
///
/// // Any ConcurrentSet works as the inner set.
/// #[derive(Default)]
/// struct MutexSet(Mutex<BTreeSet<u64>>);
/// impl ConcurrentSet<u64> for MutexSet {
///     fn insert(&self, k: u64) -> bool { self.0.lock().unwrap().insert(k) }
///     fn remove(&self, k: &u64) -> bool { self.0.lock().unwrap().remove(k) }
///     fn contains(&self, k: &u64) -> bool { self.0.lock().unwrap().contains(k) }
///     fn len(&self) -> usize { self.0.lock().unwrap().len() }
///     fn name(&self) -> &'static str { "mutex-btreeset" }
/// }
///
/// let set = Sharded::new(HashRouter::new(4), |_| MutexSet::default());
/// assert!(set.insert(7));
/// assert!(set.contains(&7));
/// assert_eq!(set.len(), 1);
/// ```
pub struct Sharded<S, R> {
    router: R,
    shards: Box<[S]>,
    name: &'static str,
}

impl<S, R> Sharded<S, R> {
    /// Builds one inner set per shard with `make(shard_index)`.
    ///
    /// The router decides the shard count; `make` lets callers configure each
    /// inner set (or build heterogeneous ones for testing).
    pub fn new<K>(router: R, mut make: impl FnMut(usize) -> S) -> Self
    where
        S: ConcurrentSet<K>,
        R: ShardRouter<K>,
    {
        let shards: Box<[S]> = (0..router.shard_count()).map(&mut make).collect();
        assert!(!shards.is_empty(), "router must declare at least one shard");
        let name = config_name(shards[0].name(), shards.len(), router.policy_name());
        Sharded { router, shards, name }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to shard `i` (diagnostics and tests).
    pub fn shard(&self, i: usize) -> &S {
        &self.shards[i]
    }

    /// The router in use.
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Per-shard quiescent sizes, in shard order.
    ///
    /// Useful for observing load balance; the sum is [`len`](ConcurrentSet::len).
    pub fn len_per_shard<K>(&self) -> Vec<usize>
    where
        S: ConcurrentSet<K>,
        R: ShardRouter<K>,
    {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Merged operation statistics across all shards.
    ///
    /// Shard snapshots are taken one after another and summed; the result is
    /// exact at quiescence and component-wise monotone under concurrency
    /// (see [`StatsSnapshot::merge`]).
    pub fn stats<K>(&self) -> StatsSnapshot
    where
        S: ConcurrentSet<K>,
        R: ShardRouter<K>,
    {
        self.shards.iter().map(|s| s.stats()).sum()
    }
}

impl<K, S, R> ConcurrentSet<K> for Sharded<S, R>
where
    S: ConcurrentSet<K>,
    R: ShardRouter<K>,
{
    #[inline]
    fn insert(&self, key: K) -> bool {
        let shard = self.router.route(&key);
        self.shards[shard].insert(key)
    }

    #[inline]
    fn remove(&self, key: &K) -> bool {
        self.shards[self.router.route(key)].remove(key)
    }

    #[inline]
    fn contains(&self, key: &K) -> bool {
        self.shards[self.router.route(key)].contains(key)
    }

    /// Sum of the per-shard quiescent counts.
    ///
    /// Each shard's `len` is exact at quiescence, so the sum is too; while
    /// mutations are in flight the sum is a monotone-per-shard approximation
    /// with the same caveat as any single shard's `len`.
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn stats(&self) -> StatsSnapshot {
        Sharded::stats(self)
    }
}

impl<K, S, R> PinnedOps<K> for Sharded<S, R>
where
    S: PinnedOps<K>,
    R: ShardRouter<K>,
{
    type OpGuard = S::OpGuard;

    /// One guard covers every shard: the [`PinnedOps`] contract requires
    /// guards to be domain-wide, so the guard of shard 0 protects operations
    /// routed to any shard.
    fn op_guard(&self) -> S::OpGuard {
        self.shards[0].op_guard()
    }

    #[inline]
    fn insert_with(&self, key: K, guard: &S::OpGuard) -> bool {
        let shard = self.router.route(&key);
        self.shards[shard].insert_with(key, guard)
    }

    #[inline]
    fn remove_with(&self, key: &K, guard: &S::OpGuard) -> bool {
        self.shards[self.router.route(key)].remove_with(key, guard)
    }

    #[inline]
    fn contains_with(&self, key: &K, guard: &S::OpGuard) -> bool {
        self.shards[self.router.route(key)].contains_with(key, guard)
    }
}

impl<K, S, R> OrderedSet<K> for Sharded<S, R>
where
    S: OrderedSet<K>,
    R: OrderedRouter<K>,
{
    fn keys_between(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        // A monotone router puts every key of [lo, hi] into the contiguous
        // shard interval [route(lo), route(hi)]; each shard scan is ascending
        // and shard i's keys all precede shard i+1's, so plain concatenation
        // yields one ascending scan.
        let first = match lo {
            Bound::Unbounded => 0,
            Bound::Included(k) | Bound::Excluded(k) => self.router.route(k),
        };
        let last = match hi {
            Bound::Unbounded => self.shards.len() - 1,
            Bound::Included(k) | Bound::Excluded(k) => self.router.route(k),
        };
        if first > last {
            // Inverted bounds: empty, matching every inner implementation.
            return Vec::new();
        }
        let mut out = Vec::new();
        for shard in &self.shards[first..=last] {
            out.extend(shard.keys_between(lo, hi));
        }
        out
    }
}

/// A key-space-partitioned concurrent **map**: the [`ConcurrentMap`] facade
/// over the same routing machinery as [`Sharded`].
///
/// This is a separate facade type rather than extra trait impls on
/// [`Sharded`] so that set-shaped compositions (whose inner type implements
/// both `ConcurrentSet<K>` and `ConcurrentMap<K, ()>`, as `lfbst` does) keep
/// unambiguous method calls; the wrapper adds no state and no indirection
/// beyond the inner [`Sharded`] it exposes through [`as_sharded`](Self::as_sharded).
///
/// The linearizability argument is identical: every key routes to exactly one
/// shard, so per-key linearizability of the inner maps lifts to the whole.
///
/// # Examples
///
/// ```
/// use cset::ConcurrentMap;
/// use lfbst::LfBst;
/// use shard::{HashRouter, ShardedMap};
///
/// let map = ShardedMap::new(HashRouter::new(4), |_| LfBst::<u64, u64>::new());
/// assert!(map.insert(7, 70));
/// assert_eq!(map.get(&7), Some(70));
/// assert_eq!(map.upsert(7, 71), Some(70));
/// assert_eq!(map.remove(&7), Some(71));
/// ```
pub struct ShardedMap<S, R> {
    inner: Sharded<S, R>,
}

impl<S, R> ShardedMap<S, R> {
    /// Builds one inner map per shard with `make(shard_index)`.
    pub fn new<K, V>(router: R, mut make: impl FnMut(usize) -> S) -> Self
    where
        S: ConcurrentMap<K, V>,
        R: ShardRouter<K>,
    {
        let shards: Box<[S]> = (0..router.shard_count()).map(&mut make).collect();
        assert!(!shards.is_empty(), "router must declare at least one shard");
        let name = config_name(shards[0].name(), shards.len(), router.policy_name());
        ShardedMap { inner: Sharded { router, shards, name } }
    }

    /// The underlying [`Sharded`] composition (shard access, router,
    /// per-shard diagnostics).
    pub fn as_sharded(&self) -> &Sharded<S, R> {
        &self.inner
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Direct access to shard `i` (diagnostics and tests).
    pub fn shard(&self, i: usize) -> &S {
        self.inner.shard(i)
    }

    /// The router in use.
    pub fn router(&self) -> &R {
        self.inner.router()
    }
}

impl<S, R: fmt::Debug> fmt::Debug for ShardedMap<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedMap").field("inner", &self.inner).finish()
    }
}

impl<K, V, S, R> ConcurrentMap<K, V> for ShardedMap<S, R>
where
    S: ConcurrentMap<K, V>,
    R: ShardRouter<K>,
{
    #[inline]
    fn insert(&self, key: K, value: V) -> bool {
        let shard = self.inner.router.route(&key);
        self.inner.shards[shard].insert(key, value)
    }

    #[inline]
    fn get(&self, key: &K) -> Option<V> {
        self.inner.shards[self.inner.router.route(key)].get(key)
    }

    #[inline]
    fn upsert(&self, key: K, value: V) -> Option<V> {
        let shard = self.inner.router.route(&key);
        self.inner.shards[shard].upsert(key, value)
    }

    #[inline]
    fn remove(&self, key: &K) -> Option<V> {
        self.inner.shards[self.inner.router.route(key)].remove(key)
    }

    #[inline]
    fn contains_key(&self, key: &K) -> bool {
        self.inner.shards[self.inner.router.route(key)].contains_key(key)
    }

    /// Sum of the per-shard quiescent counts (same contract as the set
    /// facade's [`ConcurrentSet::len`]).
    fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.len()).sum()
    }

    fn name(&self) -> &'static str {
        self.inner.name
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.shards.iter().map(|s| s.stats()).sum()
    }
}

impl<K, V, S, R> OrderedMap<K, V> for ShardedMap<S, R>
where
    S: OrderedMap<K, V>,
    R: OrderedRouter<K>,
{
    fn entries_between(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        // Same argument as `Sharded::keys_between`: a monotone router confines
        // the range to a contiguous shard interval, and shard-order
        // concatenation of ascending per-shard scans is one ascending scan.
        let first = match lo {
            Bound::Unbounded => 0,
            Bound::Included(k) | Bound::Excluded(k) => self.inner.router.route(k),
        };
        let last = match hi {
            Bound::Unbounded => self.inner.shards.len() - 1,
            Bound::Included(k) | Bound::Excluded(k) => self.inner.router.route(k),
        };
        if first > last {
            return Vec::new();
        }
        let mut out = Vec::new();
        for shard in &self.inner.shards[first..=last] {
            out.extend(shard.entries_between(lo, hi));
        }
        out
    }
}

impl<S, R> Sharded<S, R> {
    /// Collects the keys in `range` across all shards, in ascending order.
    ///
    /// Only available with an order-preserving router.  Like the inner sets'
    /// scans this is **weakly consistent** under concurrent mutation and exact
    /// in a quiescent state.
    ///
    /// # Examples
    ///
    /// ```
    /// use lfbst::LfBst;
    /// use shard::{RangeRouter, Sharded};
    /// use cset::ConcurrentSet;
    ///
    /// let set = Sharded::new(RangeRouter::covering(4, 100), |_| LfBst::new());
    /// for k in [5u64, 30, 55, 80] {
    ///     set.insert(k);
    /// }
    /// assert_eq!(set.keys_in_range(10..=80), vec![30, 55, 80]);
    /// assert_eq!(set.keys_in_range(..), vec![5, 30, 55, 80]);
    /// ```
    pub fn keys_in_range<K, Rg>(&self, range: Rg) -> Vec<K>
    where
        S: OrderedSet<K>,
        R: OrderedRouter<K>,
        Rg: RangeBounds<K>,
    {
        self.keys_between(range.start_bound(), range.end_bound())
    }
}

impl<S, R: fmt::Debug> fmt::Debug for Sharded<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sharded")
            .field("name", &self.name)
            .field("shards", &self.shards.len())
            .field("router", &self.router)
            .finish_non_exhaustive()
    }
}
