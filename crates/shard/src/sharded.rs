//! The [`Sharded`] wrapper: one logical set backed by many inner sets.

use std::collections::HashMap;
use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::Mutex;

use cset::{
    ConcurrentMap, ConcurrentSet, LoadTally, OrderedMap, OrderedSet, PinnedOps, StatsSnapshot,
};

use crate::router::{OrderedRouter, ShardRouter};

/// Interns a shard configuration label so [`ConcurrentSet::name`] can return
/// `&'static str`.  One short string leaks per **distinct** configuration
/// (inner name × shard count × policy), which is bounded and tiny.
///
/// Exposed so harnesses labelling result rows use the exact same string a
/// [`Sharded`] of that configuration reports from `name()`.
///
/// # Examples
///
/// ```
/// assert_eq!(shard::config_name("lfbst", 4, "hash"), "lfbstx4-hash");
/// ```
pub fn config_name(inner: &'static str, shards: usize, policy: &'static str) -> &'static str {
    static NAMES: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let key = format!("{inner}x{shards}-{policy}");
    let mut guard = NAMES.lock().expect("shard name table poisoned");
    let table = guard.get_or_insert_with(HashMap::new);
    if let Some(&name) = table.get(&key) {
        return name;
    }
    let leaked: &'static str = Box::leak(key.clone().into_boxed_str());
    table.insert(key, leaked);
    leaked
}

/// A key-space-partitioned concurrent set.
///
/// `Sharded` owns a boxed slice of inner sets and a [`ShardRouter`]; every
/// operation is forwarded to the shard the router selects for its key.  Since
/// each key always lands on the same shard, per-key linearizability of the
/// inner sets lifts directly to the whole: `Sharded` is a linearizable Set
/// whenever its inner sets are.
///
/// What sharding buys:
///
/// * **Contention isolation** — the upper levels of a single tree are a shared
///   hot path touched by every operation; with `N` shards an operation only
///   contends with the `1/N` of traffic routed to its shard.
/// * **Smaller structures** — each shard holds `1/N` of the keys, shortening
///   search paths (`log(n/N)` vs `log n`).
///
/// Cross-shard aggregate queries (`len`, [`stats`](Sharded::stats)) sum
/// shard-local values; see [`StatsSnapshot::merge`] for the exact/monotone
/// contract of such sums.  With an order-preserving router
/// ([`OrderedRouter`], e.g. [`RangeRouter`](crate::RangeRouter)), ordered
/// range scans remain available, served as a bounded-memory k-way merge over
/// per-shard streaming cursors — see [`Sharded::scan_range`] /
/// [`Sharded::keys_in_range`] and the [`crate::merge`] module.
///
/// # Examples
///
/// ```
/// use cset::ConcurrentSet;
/// use shard::{HashRouter, Sharded};
/// use std::collections::BTreeSet;
/// use std::sync::Mutex;
///
/// // Any ConcurrentSet works as the inner set.
/// #[derive(Default)]
/// struct MutexSet(Mutex<BTreeSet<u64>>);
/// impl ConcurrentSet<u64> for MutexSet {
///     fn insert(&self, k: u64) -> bool { self.0.lock().unwrap().insert(k) }
///     fn remove(&self, k: &u64) -> bool { self.0.lock().unwrap().remove(k) }
///     fn contains(&self, k: &u64) -> bool { self.0.lock().unwrap().contains(k) }
///     fn len(&self) -> usize { self.0.lock().unwrap().len() }
///     fn name(&self) -> &'static str { "mutex-btreeset" }
/// }
///
/// let set = Sharded::new(HashRouter::new(4), |_| MutexSet::default());
/// assert!(set.insert(7));
/// assert!(set.contains(&7));
/// assert_eq!(set.len(), 1);
/// ```
pub struct Sharded<S, R> {
    router: R,
    shards: Box<[S]>,
    /// Always-on per-shard op tallies (one padded relaxed counter per shard),
    /// bumped by every point operation regardless of the `stats` feature —
    /// the live load signal hot-shard detection reads.
    loads: Box<[LoadTally]>,
    name: &'static str,
}

fn load_tallies(n: usize) -> Box<[LoadTally]> {
    (0..n).map(|_| LoadTally::new()).collect()
}

impl<S, R> Sharded<S, R> {
    /// Builds one inner set per shard with `make(shard_index)`.
    ///
    /// The router decides the shard count; `make` lets callers configure each
    /// inner set (or build heterogeneous ones for testing).
    pub fn new<K>(router: R, mut make: impl FnMut(usize) -> S) -> Self
    where
        S: ConcurrentSet<K>,
        R: ShardRouter<K>,
    {
        let shards: Box<[S]> = (0..router.shard_count()).map(&mut make).collect();
        assert!(!shards.is_empty(), "router must declare at least one shard");
        let name = config_name(shards[0].name(), shards.len(), router.policy_name());
        let loads = load_tallies(shards.len());
        Sharded { router, shards, loads, name }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to shard `i` (diagnostics and tests).
    pub fn shard(&self, i: usize) -> &S {
        &self.shards[i]
    }

    /// The router in use.
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Per-shard quiescent sizes, in shard order.
    ///
    /// Useful for observing load balance; the sum is [`len`](ConcurrentSet::len).
    pub fn len_per_shard<K>(&self) -> Vec<usize>
    where
        S: ConcurrentSet<K>,
        R: ShardRouter<K>,
    {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Per-shard operation tallies since construction (or since the last
    /// [`take_loads`](Self::take_loads)), in shard order.
    ///
    /// Every point operation (set and map facade alike, pinned or not) bumps
    /// its target shard's relaxed counter, independently of the `stats` cargo
    /// feature, so this is always live.  Cross-shard scans are not counted:
    /// the signal is per-key routing pressure, which is what hot-shard
    /// detection and rebalancing act on.
    pub fn load_per_shard(&self) -> Vec<u64> {
        self.loads.iter().map(LoadTally::get).collect()
    }

    /// Reads **and resets** the per-shard tallies — the rebalancer's windowed
    /// load sample (consecutive calls never double count an op).
    pub fn take_loads(&self) -> Vec<u64> {
        self.loads.iter().map(LoadTally::take).collect()
    }

    #[inline]
    fn hit(&self, shard: usize) -> usize {
        self.loads[shard].bump();
        shard
    }

    /// Merged operation statistics across all shards.
    ///
    /// Shard snapshots are taken one after another and summed; the result is
    /// exact at quiescence and component-wise monotone under concurrency
    /// (see [`StatsSnapshot::merge`]).
    pub fn stats<K>(&self) -> StatsSnapshot
    where
        S: ConcurrentSet<K>,
        R: ShardRouter<K>,
    {
        self.shards.iter().map(|s| s.stats()).sum()
    }
}

impl<K, S, R> ConcurrentSet<K> for Sharded<S, R>
where
    S: ConcurrentSet<K>,
    R: ShardRouter<K>,
{
    #[inline]
    fn insert(&self, key: K) -> bool {
        let shard = self.hit(self.router.route(&key));
        self.shards[shard].insert(key)
    }

    #[inline]
    fn remove(&self, key: &K) -> bool {
        self.shards[self.hit(self.router.route(key))].remove(key)
    }

    #[inline]
    fn contains(&self, key: &K) -> bool {
        self.shards[self.hit(self.router.route(key))].contains(key)
    }

    /// Sum of the per-shard quiescent counts.
    ///
    /// Each shard's `len` is exact at quiescence, so the sum is too; while
    /// mutations are in flight the sum is a monotone-per-shard approximation
    /// with the same caveat as any single shard's `len`.
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn stats(&self) -> StatsSnapshot {
        Sharded::stats(self)
    }
}

impl<K, S, R> PinnedOps<K> for Sharded<S, R>
where
    S: PinnedOps<K>,
    R: ShardRouter<K>,
{
    type OpGuard = S::OpGuard;

    /// One guard covers every shard: the [`PinnedOps`] contract requires
    /// guards to be domain-wide, so the guard of shard 0 protects operations
    /// routed to any shard.
    fn op_guard(&self) -> S::OpGuard {
        self.shards[0].op_guard()
    }

    #[inline]
    fn insert_with(&self, key: K, guard: &S::OpGuard) -> bool {
        let shard = self.hit(self.router.route(&key));
        self.shards[shard].insert_with(key, guard)
    }

    #[inline]
    fn remove_with(&self, key: &K, guard: &S::OpGuard) -> bool {
        self.shards[self.hit(self.router.route(key))].remove_with(key, guard)
    }

    #[inline]
    fn contains_with(&self, key: &K, guard: &S::OpGuard) -> bool {
        self.shards[self.hit(self.router.route(key))].contains_with(key, guard)
    }
}

impl<S, R> Sharded<S, R> {
    /// The contiguous shard interval a monotone router confines `[lo, hi]`
    /// to, or `None` for inverted bounds (the scan is empty).
    fn shard_span<K>(&self, lo: Bound<&K>, hi: Bound<&K>) -> Option<(usize, usize)>
    where
        R: OrderedRouter<K>,
    {
        let first = match lo {
            Bound::Unbounded => 0,
            Bound::Included(k) | Bound::Excluded(k) => self.router.route(k),
        };
        let last = match hi {
            Bound::Unbounded => self.shards.len() - 1,
            Bound::Included(k) | Bound::Excluded(k) => self.router.route(k),
        };
        (first <= last).then_some((first, last))
    }
}

impl<K, S, R> OrderedSet<K> for Sharded<S, R>
where
    S: OrderedSet<K>,
    R: OrderedRouter<K>,
{
    /// A bounded-memory cross-shard scan: one streaming cursor per shard in
    /// the router-confined interval `[route(lo), route(hi)]`, k-way merged
    /// through a [`BinaryHeap`](std::collections::BinaryHeap) holding one
    /// pending key per shard (see [`crate::merge`]).  Nothing is collected up
    /// front, so `scan.take(k)` touches O(shards + k) items however large the
    /// range is.
    ///
    /// The per-shard streams are served in bounded pages
    /// ([`cset::chunked_scan_keys`] over each shard's
    /// `keys_between_limited`), **not** through the shards' own long-lived
    /// cursors: a native cursor may hold a resource (e.g. an epoch
    /// reclamation pin) for its whole lifetime, and a merged scan keeps the
    /// later shards' cursors idle until the earlier shards drain — paging
    /// guarantees that between pulls the merge holds only owned keys, so a
    /// long or slowly consumed scan never stalls reclamation.
    fn scan_keys<'a>(&'a self, lo: Bound<&K>, hi: Bound<&K>) -> cset::KeyCursor<'a, K>
    where
        K: Clone + Ord + 'a,
    {
        let Some((first, last)) = self.shard_span(lo, hi) else {
            // Inverted bounds: empty, matching every inner implementation.
            return Box::new(std::iter::empty());
        };
        let cursors: Vec<_> =
            self.shards[first..=last].iter().map(|s| cset::chunked_scan_keys(s, lo, hi)).collect();
        Box::new(crate::merge::MergedKeys::new(cursors))
    }

    /// A full collect materialises its result anyway, so it concatenates
    /// per-shard bulk scans (key-disjoint and ascending in shard order under
    /// a monotone router) instead of draining the merge cursor — which for
    /// inner sets *without* a native cursor would page the whole range
    /// through their chunked fallbacks quadratically.
    fn keys_between(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K>
    where
        K: Clone + Ord,
    {
        let Some((first, last)) = self.shard_span(lo, hi) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &self.shards[first..=last] {
            out.extend(shard.keys_between(lo, hi));
        }
        out
    }

    fn keys_between_limited(&self, lo: Bound<&K>, hi: Bound<&K>, limit: usize) -> Vec<K>
    where
        K: Clone + Ord,
    {
        self.scan_keys(lo, hi).take(limit).collect()
    }

    /// Served shard-by-shard in router order: with a monotone router the
    /// first non-empty shard holds the global minimum.
    fn first(&self) -> Option<K>
    where
        K: Clone + Ord,
    {
        self.shards.iter().find_map(|s| s.first())
    }

    fn last(&self) -> Option<K>
    where
        K: Clone + Ord,
    {
        self.shards.iter().rev().find_map(|s| s.last())
    }

    /// Starts at `route(key)` (no earlier shard can hold a larger key under a
    /// monotone router) and walks forward to the first shard with a
    /// successor.
    fn next_after(&self, key: &K) -> Option<K>
    where
        K: Clone + Ord,
    {
        let start = self.router.route(key);
        self.shards[start..].iter().find_map(|s| s.next_after(key))
    }

    /// Parallel cross-shard teardown: every shard in the router-confined
    /// interval runs its own `remove_range` on a scoped thread (shards hold
    /// disjoint key sets under a monotone router, so each can be handed the
    /// full bounds and the counts sum exactly).  A span of one shard stays on
    /// the calling thread.
    fn remove_range(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize
    where
        K: Clone + Ord + Send + Sync,
    {
        let Some((first, last)) = self.shard_span(lo, hi) else {
            return 0;
        };
        if first == last {
            return self.shards[first].remove_range(lo, hi);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self.shards[first..=last]
                .iter()
                .map(|shard| scope.spawn(move || shard.remove_range(lo, hi)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard teardown panicked")).sum()
        })
    }
}

/// A key-space-partitioned concurrent **map**: the [`ConcurrentMap`] facade
/// over the same routing machinery as [`Sharded`].
///
/// This is a separate facade type rather than extra trait impls on
/// [`Sharded`] so that set-shaped compositions (whose inner type implements
/// both `ConcurrentSet<K>` and `ConcurrentMap<K, ()>`, as `lfbst` does) keep
/// unambiguous method calls; the wrapper adds no state and no indirection
/// beyond the inner [`Sharded`] it exposes through [`as_sharded`](Self::as_sharded).
///
/// The linearizability argument is identical: every key routes to exactly one
/// shard, so per-key linearizability of the inner maps lifts to the whole.
///
/// # Examples
///
/// ```
/// use cset::ConcurrentMap;
/// use lfbst::LfBst;
/// use shard::{HashRouter, ShardedMap};
///
/// let map = ShardedMap::new(HashRouter::new(4), |_| LfBst::<u64, u64>::new());
/// assert!(map.insert(7, 70));
/// assert_eq!(map.get(&7), Some(70));
/// assert_eq!(map.upsert(7, 71), Some(70));
/// assert_eq!(map.remove(&7), Some(71));
/// ```
pub struct ShardedMap<S, R> {
    inner: Sharded<S, R>,
}

impl<S, R> ShardedMap<S, R> {
    /// Builds one inner map per shard with `make(shard_index)`.
    pub fn new<K, V>(router: R, mut make: impl FnMut(usize) -> S) -> Self
    where
        S: ConcurrentMap<K, V>,
        R: ShardRouter<K>,
    {
        let shards: Box<[S]> = (0..router.shard_count()).map(&mut make).collect();
        assert!(!shards.is_empty(), "router must declare at least one shard");
        let name = config_name(shards[0].name(), shards.len(), router.policy_name());
        let loads = load_tallies(shards.len());
        ShardedMap { inner: Sharded { router, shards, loads, name } }
    }

    /// The underlying [`Sharded`] composition (shard access, router,
    /// per-shard diagnostics).
    pub fn as_sharded(&self) -> &Sharded<S, R> {
        &self.inner
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Direct access to shard `i` (diagnostics and tests).
    pub fn shard(&self, i: usize) -> &S {
        self.inner.shard(i)
    }

    /// The router in use.
    pub fn router(&self) -> &R {
        self.inner.router()
    }

    /// Per-shard op tallies (see [`Sharded::load_per_shard`]).
    pub fn load_per_shard(&self) -> Vec<u64> {
        self.inner.load_per_shard()
    }

    /// Reads and resets the per-shard tallies (see [`Sharded::take_loads`]).
    pub fn take_loads(&self) -> Vec<u64> {
        self.inner.take_loads()
    }
}

impl<S, R: fmt::Debug> fmt::Debug for ShardedMap<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedMap").field("inner", &self.inner).finish()
    }
}

impl<K, V, S, R> ConcurrentMap<K, V> for ShardedMap<S, R>
where
    S: ConcurrentMap<K, V>,
    R: ShardRouter<K>,
{
    #[inline]
    fn insert(&self, key: K, value: V) -> bool {
        let shard = self.inner.hit(self.inner.router.route(&key));
        self.inner.shards[shard].insert(key, value)
    }

    #[inline]
    fn get(&self, key: &K) -> Option<V> {
        self.inner.shards[self.inner.hit(self.inner.router.route(key))].get(key)
    }

    #[inline]
    fn upsert(&self, key: K, value: V) -> Option<V> {
        let shard = self.inner.hit(self.inner.router.route(&key));
        self.inner.shards[shard].upsert(key, value)
    }

    #[inline]
    fn remove(&self, key: &K) -> Option<V> {
        self.inner.shards[self.inner.hit(self.inner.router.route(key))].remove(key)
    }

    #[inline]
    fn contains_key(&self, key: &K) -> bool {
        self.inner.shards[self.inner.hit(self.inner.router.route(key))].contains_key(key)
    }

    /// Sum of the per-shard quiescent counts (same contract as the set
    /// facade's [`ConcurrentSet::len`]).
    fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.len()).sum()
    }

    fn name(&self) -> &'static str {
        self.inner.name
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.shards.iter().map(|s| s.stats()).sum()
    }
}

impl<K, V, S, R> OrderedMap<K, V> for ShardedMap<S, R>
where
    S: OrderedMap<K, V>,
    R: OrderedRouter<K>,
{
    /// Same shape as [`Sharded`]'s `scan_keys`: per-shard entry streams over
    /// the router-confined shard interval, served in bounded pages
    /// ([`cset::chunked_scan_entries`], so no per-shard resource outlives a
    /// page fetch) and k-way merged with one pending entry per shard (see
    /// [`crate::merge`]).
    fn scan_entries<'a>(&'a self, lo: Bound<&K>, hi: Bound<&K>) -> cset::EntryCursor<'a, K, V>
    where
        K: Clone + Ord + 'a,
        V: 'a,
    {
        let Some((first, last)) = self.inner.shard_span(lo, hi) else {
            return Box::new(std::iter::empty());
        };
        let cursors: Vec<_> = self.inner.shards[first..=last]
            .iter()
            .map(|s| cset::chunked_scan_entries(s, lo, hi))
            .collect();
        Box::new(crate::merge::MergedEntries::new(cursors))
    }

    /// Concatenates per-shard bulk scans, for the same reason as
    /// [`Sharded`]'s `keys_between`: a collect materialises its result, and
    /// concatenation never pays the chunked-fallback paging of cursor-less
    /// inner maps.
    fn entries_between(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)>
    where
        K: Clone + Ord,
    {
        let Some((first, last)) = self.inner.shard_span(lo, hi) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &self.inner.shards[first..=last] {
            out.extend(shard.entries_between(lo, hi));
        }
        out
    }

    fn entries_between_limited(&self, lo: Bound<&K>, hi: Bound<&K>, limit: usize) -> Vec<(K, V)>
    where
        K: Clone + Ord,
    {
        self.scan_entries(lo, hi).take(limit).collect()
    }

    fn first_entry(&self) -> Option<(K, V)>
    where
        K: Clone + Ord,
    {
        self.inner.shards.iter().find_map(|s| s.first_entry())
    }

    fn last_entry(&self) -> Option<(K, V)>
    where
        K: Clone + Ord,
    {
        self.inner.shards.iter().rev().find_map(|s| s.last_entry())
    }

    fn next_entry_after(&self, key: &K) -> Option<(K, V)>
    where
        K: Clone + Ord,
    {
        let start = self.inner.router.route(key);
        self.inner.shards[start..].iter().find_map(|s| s.next_entry_after(key))
    }

    /// Parallel cross-shard teardown, exactly as on the set facade: disjoint
    /// key sets per shard make the fan-out trivially correct.
    fn remove_range(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize
    where
        K: Clone + Ord + Send + Sync,
    {
        self.retain_range(lo, hi, &|_, _| false)
    }

    /// Parallel cross-shard eviction sweep: one scoped thread per shard in
    /// the span, all judging with the same (`Sync`) predicate.
    fn retain_range(
        &self,
        lo: Bound<&K>,
        hi: Bound<&K>,
        keep: &(dyn Fn(&K, &V) -> bool + Sync),
    ) -> usize
    where
        K: Clone + Ord + Send + Sync,
    {
        let Some((first, last)) = self.inner.shard_span(lo, hi) else {
            return 0;
        };
        if first == last {
            return self.inner.shards[first].retain_range(lo, hi, keep);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self.inner.shards[first..=last]
                .iter()
                .map(|shard| scope.spawn(move || shard.retain_range(lo, hi, keep)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard teardown panicked")).sum()
        })
    }
}

impl<S, R> Sharded<S, R> {
    /// Collects the keys in `range` across all shards, in ascending order.
    ///
    /// Only available with an order-preserving router.  Like the inner sets'
    /// scans this is **weakly consistent** under concurrent mutation and exact
    /// in a quiescent state.  This is the collecting convenience over
    /// [`scan_range`](Self::scan_range).
    ///
    /// # Examples
    ///
    /// ```
    /// use lfbst::LfBst;
    /// use shard::{RangeRouter, Sharded};
    /// use cset::ConcurrentSet;
    ///
    /// let set = Sharded::new(RangeRouter::covering(4, 100), |_| LfBst::new());
    /// for k in [5u64, 30, 55, 80] {
    ///     set.insert(k);
    /// }
    /// assert_eq!(set.keys_in_range(10..=80), vec![30, 55, 80]);
    /// assert_eq!(set.keys_in_range(..), vec![5, 30, 55, 80]);
    /// ```
    pub fn keys_in_range<K, Rg>(&self, range: Rg) -> Vec<K>
    where
        K: Clone + Ord,
        S: OrderedSet<K>,
        R: OrderedRouter<K>,
        Rg: RangeBounds<K>,
    {
        self.keys_between(range.start_bound(), range.end_bound())
    }

    /// Streams the keys in `range` across all shards, ascending, without
    /// materialising anything: a k-way merge over per-shard cursors holding
    /// one pending key per shard (see [`crate::merge`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use lfbst::LfBst;
    /// use shard::{RangeRouter, Sharded};
    /// use cset::ConcurrentSet;
    ///
    /// let set = Sharded::new(RangeRouter::covering(4, 100), |_| LfBst::new());
    /// for k in [5u64, 30, 55, 80] {
    ///     set.insert(k);
    /// }
    /// // Top-2 without touching the rest of the key space.
    /// let top: Vec<u64> = set.scan_range(10..).take(2).collect();
    /// assert_eq!(top, vec![30, 55]);
    /// ```
    pub fn scan_range<'a, K, Rg>(&'a self, range: Rg) -> cset::KeyCursor<'a, K>
    where
        K: Clone + Ord + 'a,
        S: OrderedSet<K>,
        R: OrderedRouter<K>,
        Rg: RangeBounds<K>,
    {
        self.scan_keys(range.start_bound(), range.end_bound())
    }
}

impl<S, R: fmt::Debug> fmt::Debug for Sharded<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sharded")
            .field("name", &self.name)
            .field("shards", &self.shards.len())
            .field("router", &self.router)
            .finish_non_exhaustive()
    }
}
