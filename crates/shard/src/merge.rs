//! Bounded-memory k-way merge over per-shard streaming cursors.
//!
//! A cross-shard ordered scan used to collect every shard's result `Vec` and
//! concatenate — O(total result) memory before the caller saw the first key.
//! The mergers here hold exactly **one pending item per shard cursor** in a
//! [`BinaryHeap`] and pull replacements lazily as items are consumed, so a
//! scan's resident cost is `O(shards)` plus whatever page the caller is
//! building, independent of the range size.  Early-exit consumers (top-k,
//! pagination) therefore never touch the tail of any shard.
//!
//! With an order-preserving router the per-shard streams are ascending *and*
//! key-disjoint, so the heap degenerates into "drain one cursor, then the
//! next" — the merge costs `O(log shards)` per item in the worst case and
//! behaves like plain concatenation in the common one.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use cset::{EntryCursor, KeyCursor};

/// One pending item of the merge: the current head of cursor `src`.
///
/// Ordered by `key` (then `src` for determinism on duplicate keys), reversed
/// so that `BinaryHeap`'s max-heap pops the smallest key first.  The value is
/// payload only — it never participates in the comparison, so `V` needs no
/// bounds.
struct Head<K, V> {
    key: K,
    value: V,
    src: usize,
}

impl<K: Ord, V> PartialEq for Head<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}

impl<K: Ord, V> Eq for Head<K, V> {}

impl<K: Ord, V> PartialOrd for Head<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, V> Ord for Head<K, V> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: the heap is a max-heap, the merge needs the minimum.
        other.key.cmp(&self.key).then_with(|| other.src.cmp(&self.src))
    }
}

/// K-way merge over per-shard **entry** cursors; yields `(key, value)` pairs
/// in ascending key order.
pub struct MergedEntries<'a, K, V> {
    heap: BinaryHeap<Head<K, V>>,
    /// Disjoint-run fast path: the overall minimum, kept out of the heap
    /// when it is known to precede every heap entry (see `Iterator::next`).
    front: Option<Head<K, V>>,
    cursors: Vec<EntryCursor<'a, K, V>>,
}

impl<'a, K: Ord, V> MergedEntries<'a, K, V> {
    /// Builds the merge, priming the heap with each cursor's first item
    /// (the only eager work; everything else is pulled on demand).
    pub fn new(mut cursors: Vec<EntryCursor<'a, K, V>>) -> Self {
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (src, cursor) in cursors.iter_mut().enumerate() {
            if let Some((key, value)) = cursor.next() {
                heap.push(Head { key, value, src });
            }
        }
        MergedEntries { heap, front: None, cursors }
    }
}

impl<K: Ord, V> Iterator for MergedEntries<'_, K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        let Head { key, value, src } = match self.front.take() {
            Some(head) => head,
            None => self.heap.pop()?,
        };
        if let Some((k, v)) = self.cursors[src].next() {
            let head = Head { key: k, value: v, src };
            // With an ordered router the per-shard runs are key-disjoint, so
            // the replacement usually still precedes every other stream's
            // head: keep it in `front` (one comparison) instead of paying a
            // heap round-trip per item.  `head < top` in the reversed
            // ordering means `top`'s key comes first.
            match self.heap.peek() {
                Some(top) if head < *top => self.heap.push(head),
                _ => self.front = Some(head),
            }
        }
        Some((key, value))
    }
}

impl<K, V> std::fmt::Debug for MergedEntries<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergedEntries")
            .field("cursors", &self.cursors.len())
            .field("pending", &(self.heap.len() + usize::from(self.front.is_some())))
            .finish()
    }
}

/// K-way merge over per-shard **key** cursors; yields keys ascending.
pub struct MergedKeys<'a, K> {
    heap: BinaryHeap<Head<K, ()>>,
    /// Disjoint-run fast path, as in [`MergedEntries`].
    front: Option<Head<K, ()>>,
    cursors: Vec<KeyCursor<'a, K>>,
}

impl<'a, K: Ord> MergedKeys<'a, K> {
    /// Builds the merge, priming the heap with each cursor's first key.
    pub fn new(mut cursors: Vec<KeyCursor<'a, K>>) -> Self {
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (src, cursor) in cursors.iter_mut().enumerate() {
            if let Some(key) = cursor.next() {
                heap.push(Head { key, value: (), src });
            }
        }
        MergedKeys { heap, front: None, cursors }
    }
}

impl<K: Ord> Iterator for MergedKeys<'_, K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        let Head { key, src, .. } = match self.front.take() {
            Some(head) => head,
            None => self.heap.pop()?,
        };
        if let Some(k) = self.cursors[src].next() {
            let head = Head { key: k, value: (), src };
            match self.heap.peek() {
                Some(top) if head < *top => self.heap.push(head),
                _ => self.front = Some(head),
            }
        }
        Some(key)
    }
}

impl<K> std::fmt::Debug for MergedKeys<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergedKeys")
            .field("cursors", &self.cursors.len())
            .field("pending", &(self.heap.len() + usize::from(self.front.is_some())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(keys: Vec<u64>) -> KeyCursor<'static, u64> {
        Box::new(keys.into_iter())
    }

    #[test]
    fn merges_disjoint_ascending_streams() {
        let merged: Vec<u64> =
            MergedKeys::new(vec![boxed(vec![1, 2, 3]), boxed(vec![10, 11]), boxed(vec![20])])
                .collect();
        assert_eq!(merged, vec![1, 2, 3, 10, 11, 20]);
    }

    #[test]
    fn merges_interleaved_streams() {
        let merged: Vec<u64> =
            MergedKeys::new(vec![boxed(vec![1, 4, 7]), boxed(vec![2, 5, 8]), boxed(vec![3, 6, 9])])
                .collect();
        assert_eq!(merged, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_uneven_streams() {
        let merged: Vec<u64> =
            MergedKeys::new(vec![boxed(vec![]), boxed(vec![5]), boxed(vec![])]).collect();
        assert_eq!(merged, vec![5]);
        assert!(MergedKeys::new(Vec::new()).collect::<Vec<u64>>().is_empty());
    }

    #[test]
    fn duplicate_keys_break_ties_by_source() {
        let merged: Vec<(u64, &str)> = MergedEntries::new(vec![
            Box::new(vec![(1u64, "a"), (3, "a")].into_iter()) as EntryCursor<'static, u64, &str>,
            Box::new(vec![(1u64, "b")].into_iter()),
        ])
        .collect();
        assert_eq!(merged, vec![(1, "a"), (1, "b"), (3, "a")]);
    }

    #[test]
    fn merge_is_lazy() {
        // An infinite cursor: the merge must never try to drain it.
        let mut merged = MergedKeys::new(vec![boxed(vec![100, 200]), Box::new(0u64..)]);
        assert_eq!(merged.next(), Some(0));
        assert_eq!(merged.next(), Some(1));
        let first_three: Vec<u64> = merged.take(3).collect();
        assert_eq!(first_three, vec![2, 3, 4]);
    }
}
