//! The [`Rebalancer`]: load-driven split/merge policy over an
//! [`ElasticMap`], plus a background-thread driver.
//!
//! The mechanism (how a strip is split or merged online) lives in
//! [`crate::elastic`]; this module is only *policy*: read the windowed
//! per-strip load tallies, decide whether the hottest strip is hot enough to
//! split or the coldest adjacent pair cold enough to merge, and apply at
//! most one action per step.  One action per window keeps the feedback loop
//! stable — each decision is made against loads measured on the layout it
//! changes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_epoch::Reclaimer;
use cset::OrderedMap;

use crate::elastic::ElasticMap;

/// Tuning knobs for the [`Rebalancer`].
///
/// The defaults are deliberately conservative: a strip must carry more than
/// `hot_factor` times the mean window load to be split, and an adjacent pair
/// must *together* carry less than `cold_factor` times the mean to be merged
/// — the gap between the two thresholds is the hysteresis **dead band** that
/// stops a borderline strip from oscillating.  The band alone cannot stop
/// *load* that oscillates (heat that moves strip-to-strip window-to-window
/// can legitimately clear both thresholds in turn), so
/// [`cooldown`](Self::cooldown) adds a refractory period: after a split,
/// merges are
/// suppressed for that many policy steps, and vice versa, so a
/// split→merge→split thrash cycle cannot complete.
#[derive(Clone, Copy, Debug)]
pub struct RebalancePolicy {
    /// Split the hottest strip when its window load exceeds
    /// `hot_factor × mean` (default `1.5`).
    ///
    /// Must stay below the shard count: with `N` strips the hottest strip
    /// carries at most `N × mean` (all of the load), so e.g. `2.0` could
    /// never trigger on a two-strip map.  `1.5` is reachable at any `N ≥ 2`
    /// and well above uniform-load noise.
    pub hot_factor: f64,
    /// Merge the coldest adjacent pair when its combined window load is
    /// below `cold_factor × mean` (default `0.5`).
    pub cold_factor: f64,
    /// Never merge below this many strips (default `1`).
    pub min_shards: usize,
    /// Never split above this many strips (default `64`).
    pub max_shards: usize,
    /// Ignore windows with fewer total ops than this — too little signal to
    /// act on (default `2048`).
    pub min_window_ops: u64,
    /// Sleep between steps when driven by [`Rebalancer::spawn`]
    /// (default 5 ms).
    pub interval: Duration,
    /// After an applied action, suppress the **opposite** action for this
    /// many policy steps (default `4`) — the refractory half of the
    /// hysteresis.  Same-direction actions stay allowed (repeated splits of
    /// a genuinely hot region are progress, not thrash); `0` disables the
    /// refractory and leaves only the threshold dead band.
    pub cooldown: u32,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            hot_factor: 1.5,
            cold_factor: 0.5,
            min_shards: 1,
            max_shards: 64,
            min_window_ops: 2048,
            interval: Duration::from_millis(5),
            cooldown: 4,
        }
    }
}

/// One applied rebalance decision, reported by [`Rebalancer::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Strip `strip` was split at key `pivot`.
    Split {
        /// The strip index that was split (as of the pre-split table).
        strip: usize,
        /// The new boundary key.
        pivot: u64,
    },
    /// Strips `left` and `left + 1` were merged.
    Merge {
        /// The left strip index of the merged pair.
        left: usize,
    },
}

/// Detects hot/cold strips from an [`ElasticMap`]'s load tallies and
/// rebalances it, either step-by-step ([`step`](Self::step)) or from a
/// background thread ([`spawn`](Self::spawn)).
///
/// # Examples
///
/// ```
/// use cset::ConcurrentMap;
/// use lfbst::LfBst;
/// use shard::{ElasticMap, RebalancePolicy, Rebalancer};
///
/// let map: ElasticMap<_> = ElasticMap::covering(2, 1_000, || LfBst::<u64, u64>::new());
/// for k in 0..1_000 {
///     map.insert(k, k);
/// }
/// map.take_loads(); // discard the prefill window
/// // Hammer the first strip, then let one policy step react.
/// for _ in 0..3_000 {
///     map.get(&3);
/// }
/// let mut balancer = Rebalancer::new(RebalancePolicy::default());
/// let action = balancer.step(&map);
/// assert!(action.is_some(), "a 3000-op strip next to an idle one is hot");
/// assert_eq!(map.shard_count(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Rebalancer {
    policy: RebalancePolicy,
    /// Policy steps left in which a split is suppressed (set by a merge).
    split_block: u32,
    /// Policy steps left in which a merge is suppressed (set by a split).
    merge_block: u32,
}

impl Rebalancer {
    /// Creates a rebalancer with the given policy.
    pub fn new(policy: RebalancePolicy) -> Self {
        Rebalancer { policy, split_block: 0, merge_block: 0 }
    }

    /// The policy in use.
    pub fn policy(&self) -> &RebalancePolicy {
        &self.policy
    }

    /// Samples the load window (resetting the tallies) and applies at most
    /// one split or merge.  Returns the applied action, if any.
    ///
    /// Safe to race with readers, writers, and even other policy drivers:
    /// the map validates every decision against its current table and
    /// rejects stale ones (`step` then simply reports `None`).  The receiver
    /// is `&mut` because the refractory state
    /// ([`RebalancePolicy::cooldown`]) lives in the rebalancer, not the map.
    pub fn step<S, V, R>(&mut self, map: &ElasticMap<S, R>) -> Option<RebalanceAction>
    where
        S: OrderedMap<u64, V>,
        V: PartialEq,
        R: Reclaimer,
    {
        let split_suppressed = self.split_block > 0;
        let merge_suppressed = self.merge_block > 0;
        self.split_block = self.split_block.saturating_sub(1);
        self.merge_block = self.merge_block.saturating_sub(1);

        let loads = map.take_loads();
        let shards = loads.len();
        let total: u64 = loads.iter().sum();
        if shards == 0 || total < self.policy.min_window_ops {
            return None;
        }
        let mean = total as f64 / shards as f64;

        // Hottest strip first: under skew, splitting the hot strip is the
        // move that buys throughput; merging is cleanup.
        let (hot, &hot_load) = loads.iter().enumerate().max_by_key(|(_, &l)| l).expect("non-empty");
        if !split_suppressed
            && shards < self.policy.max_shards
            && hot_load as f64 > self.policy.hot_factor * mean
        {
            if let Some(pivot) = map.split_pivot(hot) {
                if map.split(hot, pivot) {
                    self.merge_block = self.policy.cooldown;
                    return Some(RebalanceAction::Split { strip: hot, pivot });
                }
            }
        }

        if !merge_suppressed && shards > self.policy.min_shards && shards >= 2 {
            let (left, pair_load) = loads
                .windows(2)
                .map(|w| w[0] + w[1])
                .enumerate()
                .min_by_key(|&(_, l)| l)
                .expect("at least two strips");
            if (pair_load as f64) < self.policy.cold_factor * mean && map.merge(left) {
                self.split_block = self.policy.cooldown;
                return Some(RebalanceAction::Merge { left });
            }
        }
        None
    }

    /// Runs [`step`](Self::step) every [`RebalancePolicy::interval`] on a
    /// background thread until the returned handle is stopped (or dropped).
    pub fn spawn<S, V, R>(self, map: Arc<ElasticMap<S, R>>) -> RebalancerHandle
    where
        S: OrderedMap<u64, V> + 'static,
        V: PartialEq + Send + Sync + 'static,
        R: Reclaimer,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("shard-rebalancer".into())
            .spawn(move || {
                let mut balancer = self;
                let mut actions = 0u64;
                while !stop_flag.load(Ordering::Acquire) {
                    if balancer.step(&map).is_some() {
                        actions += 1;
                    }
                    std::thread::sleep(balancer.policy.interval);
                }
                actions
            })
            .expect("spawn rebalancer thread");
        RebalancerHandle { stop, thread: Some(thread) }
    }
}

/// Handle to a background rebalancer started by [`Rebalancer::spawn`].
///
/// Dropping the handle also stops the thread (joining it, ignoring a panic);
/// call [`stop`](Self::stop) to observe the applied-action count.
#[derive(Debug)]
pub struct RebalancerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<u64>>,
}

impl RebalancerHandle {
    /// Stops the rebalancer thread and returns how many actions it applied.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the rebalancer thread.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        match self.thread.take() {
            Some(t) => t.join().expect("rebalancer thread panicked"),
            None => 0,
        }
    }
}

impl Drop for RebalancerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            // A panic in the rebalancer already surfaced; don't double-panic.
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    use cset::ConcurrentMap;
    use lfbst::LfBst;

    use super::*;

    fn new_map(shards: usize, span: u64) -> ElasticMap<LfBst<u64, u64>> {
        ElasticMap::covering(shards, span, LfBst::new)
    }

    fn quiet_policy() -> RebalancePolicy {
        RebalancePolicy { min_window_ops: 64, ..RebalancePolicy::default() }
    }

    #[test]
    fn step_ignores_windows_below_the_signal_floor() {
        let map = new_map(2, 1_000);
        for k in 0..1_000 {
            map.insert(k, k);
        }
        map.take_loads();
        for _ in 0..63 {
            map.get(&3);
        }
        let mut balancer = Rebalancer::new(quiet_policy());
        assert_eq!(balancer.step(&map), None, "63 ops is below the 64-op floor");
        assert_eq!(map.shard_count(), 2);
        // The probe itself consumed the window; rebuild it past the floor.
        for _ in 0..64 {
            map.get(&3);
        }
        assert!(matches!(balancer.step(&map), Some(RebalanceAction::Split { strip: 0, .. })));
        assert_eq!(map.shard_count(), 3);
    }

    #[test]
    fn step_splits_the_hottest_strip() {
        let map = new_map(4, 4_096);
        for k in 0..4_096 {
            map.insert(k, k);
        }
        map.take_loads();
        // Strip 3 carries the whole window.
        for k in 0..1_000u64 {
            map.get(&(3_072 + k % 1_024));
        }
        let action = Rebalancer::new(quiet_policy()).step(&map);
        assert!(matches!(action, Some(RebalanceAction::Split { strip: 3, .. })), "got {action:?}");
        assert_eq!(map.shard_count(), 5);
        assert_eq!(map.boundaries().len(), 4);
    }

    #[test]
    fn step_merges_the_coldest_adjacent_pair_when_capped() {
        let map = new_map(4, 4_096);
        for k in 0..4_096 {
            map.insert(k, k);
        }
        map.take_loads();
        for _ in 0..1_000 {
            map.get(&4_000); // all heat on the last strip
        }
        // At the shard cap the hot strip cannot split, so the cold front
        // strips merge instead.
        let policy = RebalancePolicy { max_shards: 4, ..quiet_policy() };
        let action = Rebalancer::new(policy).step(&map);
        assert_eq!(action, Some(RebalanceAction::Merge { left: 0 }));
        assert_eq!(map.shard_count(), 3);
    }

    #[test]
    fn step_respects_min_shards() {
        let map = new_map(2, 1_000);
        for k in 0..1_000 {
            map.insert(k, k);
        }
        map.take_loads();
        for k in 0..500u64 {
            map.get(&k); // strip 0 only — pair (0, 1) is NOT cold
        }
        let policy = RebalancePolicy { min_shards: 2, max_shards: 2, ..quiet_policy() };
        assert_eq!(Rebalancer::new(policy).step(&map), None);
        assert_eq!(map.shard_count(), 2);
    }

    /// Drives an oscillating skew: even windows hammer the front of the key
    /// space (hot front strip → split), odd windows hammer the back; with
    /// `max_shards` capped one above the start, the post-split layout cannot
    /// split again, so the just-split cold halves are a merge candidate every
    /// odd window.  Returns how many (splits, merges) the policy applied.
    fn run_oscillation(cooldown: u32, windows: usize) -> (u64, u64) {
        let map = new_map(2, 4_096);
        for k in 0..4_096 {
            map.insert(k, k);
        }
        map.take_loads();
        let policy = RebalancePolicy { max_shards: 3, cooldown, ..quiet_policy() };
        let mut balancer = Rebalancer::new(policy);
        let (mut splits, mut merges) = (0u64, 0u64);
        for w in 0..windows {
            let probe = if w % 2 == 0 { 3 } else { 4_090 };
            for _ in 0..1_000 {
                map.get(&probe);
            }
            match balancer.step(&map) {
                Some(RebalanceAction::Split { .. }) => splits += 1,
                Some(RebalanceAction::Merge { .. }) => merges += 1,
                None => {}
            }
        }
        (splits, merges)
    }

    /// The no-thrash property: load that oscillates strip-to-strip clears
    /// both thresholds in alternation, so without the refractory the policy
    /// thrashes split→merge→split; with it, the cycle cannot complete.
    #[test]
    fn cooldown_dampens_split_merge_thrash() {
        let (splits, merges) = run_oscillation(0, 12);
        assert!(
            splits >= 4 && merges >= 4,
            "without a cooldown the oscillation must thrash (got {splits} splits, {merges} merges)"
        );
        let (splits, merges) = run_oscillation(16, 12);
        assert_eq!(
            (splits, merges),
            (1, 0),
            "a cooldown spanning the run must pin the layout after the first action"
        );
        assert!(RebalancePolicy::default().cooldown > 0, "hysteresis must be on by default");
    }

    #[test]
    fn spawned_rebalancer_reacts_to_skew() {
        let map = std::sync::Arc::new(new_map(2, 4_096));
        for k in 0..4_096 {
            map.insert(k, k);
        }
        map.take_loads();
        let policy = RebalancePolicy {
            min_window_ops: 256,
            interval: Duration::from_millis(1),
            ..RebalancePolicy::default()
        };
        let handle = Rebalancer::new(policy).spawn(std::sync::Arc::clone(&map));
        let deadline = Instant::now() + Duration::from_secs(5);
        while map.shard_count() <= 2 && Instant::now() < deadline {
            for _ in 0..512 {
                map.get(&7); // hammer the first strip
            }
        }
        let actions = handle.stop();
        assert!(actions >= 1, "the background rebalancer never acted on the skew");
        assert!(map.shard_count() > 2, "the hot strip was never split");
    }
}
