//! Shared helpers for the cross-crate integration tests.
//!
//! The heart of this crate is [`SetConformance`], a reusable battery of checks
//! that any [`ConcurrentSet`] implementation in the workspace must pass: basic
//! sequential semantics, agreement with `BTreeSet` on random operation
//! sequences, and concurrent accounting (for every key, successful inserts
//! minus successful removes equals final membership).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use cset::ConcurrentSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reusable conformance battery for concurrent set implementations.
#[derive(Debug, Clone, Copy)]
pub struct SetConformance {
    /// Number of worker threads for the concurrent checks.
    pub threads: usize,
    /// Operations per thread in the concurrent checks.
    pub ops_per_thread: usize,
    /// Key range for randomized checks.
    pub key_range: u64,
    /// RNG seed, so failures are reproducible.
    pub seed: u64,
}

impl Default for SetConformance {
    fn default() -> Self {
        SetConformance { threads: 4, ops_per_thread: 20_000, key_range: 512, seed: 0xDECAF }
    }
}

impl SetConformance {
    /// Runs every check against a fresh set produced by `make`.
    pub fn check_all<S, F>(&self, make: F)
    where
        S: ConcurrentSet<u64> + 'static,
        F: Fn() -> S,
    {
        self.check_sequential_semantics(&make());
        self.check_against_model(&make());
        self.check_concurrent_accounting(Arc::new(make()));
    }

    /// Basic single-threaded Set semantics.
    pub fn check_sequential_semantics<S: ConcurrentSet<u64>>(&self, set: &S) {
        assert!(set.is_empty(), "{}: new set must be empty", set.name());
        assert!(!set.contains(&1));
        assert!(!set.remove(&1));
        assert!(set.insert(1));
        assert!(!set.insert(1));
        assert!(set.contains(&1));
        assert_eq!(set.len(), 1);
        assert!(set.insert(0));
        assert!(set.insert(2));
        assert_eq!(set.len(), 3);
        assert!(set.remove(&1));
        assert!(!set.remove(&1));
        assert!(!set.contains(&1));
        assert!(set.contains(&0));
        assert!(set.contains(&2));
        assert_eq!(set.len(), 2);
    }

    /// Random single-threaded operation sequence compared against `BTreeSet`.
    pub fn check_against_model<S: ConcurrentSet<u64>>(&self, set: &S) {
        let mut model = BTreeSet::new();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for i in 0..self.ops_per_thread {
            let k = rng.gen_range(0..self.key_range);
            match rng.gen_range(0..3) {
                0 => assert_eq!(
                    set.insert(k),
                    model.insert(k),
                    "{}: insert({k}) diverged at step {i}",
                    set.name()
                ),
                1 => assert_eq!(
                    set.remove(&k),
                    model.remove(&k),
                    "{}: remove({k}) diverged at step {i}",
                    set.name()
                ),
                _ => assert_eq!(
                    set.contains(&k),
                    model.contains(&k),
                    "{}: contains({k}) diverged at step {i}",
                    set.name()
                ),
            }
            if i % 1024 == 0 {
                assert_eq!(set.len(), model.len(), "{}: len diverged at step {i}", set.name());
            }
        }
        assert_eq!(set.len(), model.len());
        for k in 0..self.key_range {
            assert_eq!(
                set.contains(&k),
                model.contains(&k),
                "{}: final membership of {k}",
                set.name()
            );
        }
    }

    /// Concurrent mixed workload with per-key accounting: for every key the
    /// number of successful inserts minus successful removes must be 0 or 1 and
    /// must equal its final membership.
    pub fn check_concurrent_accounting<S>(&self, set: Arc<S>)
    where
        S: ConcurrentSet<u64> + 'static,
    {
        let balance = Arc::new((0..self.key_range).map(|_| AtomicI64::new(0)).collect::<Vec<_>>());
        let handles: Vec<_> = (0..self.threads)
            .map(|t| {
                let set = Arc::clone(&set);
                let balance = Arc::clone(&balance);
                let ops = self.ops_per_thread;
                let range = self.key_range;
                let seed = self.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    for _ in 0..ops {
                        let k = rng.gen_range(0..range);
                        match rng.gen_range(0..10) {
                            0..=3 => {
                                if set.insert(k) {
                                    balance[k as usize].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            4..=7 => {
                                if set.remove(&k) {
                                    balance[k as usize].fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                set.contains(&k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("conformance worker panicked");
        }
        let mut expected = 0usize;
        for k in 0..self.key_range {
            let b = balance[k as usize].load(Ordering::Relaxed);
            assert!(b == 0 || b == 1, "{}: impossible balance {b} for key {k}", set.name());
            assert_eq!(set.contains(&k), b == 1, "{}: membership mismatch for key {k}", set.name());
            expected += b as usize;
        }
        assert_eq!(set.len(), expected, "{}: len disagrees with accounting", set.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locked_bst::CoarseLockBst;

    #[test]
    fn conformance_battery_accepts_a_correct_set() {
        let c = SetConformance { ops_per_thread: 2_000, ..Default::default() };
        c.check_all(CoarseLockBst::<u64>::new);
    }
}
