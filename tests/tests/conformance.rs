//! Every concurrent set in the workspace must pass the same conformance
//! battery: sequential semantics, agreement with a `BTreeSet` model, and
//! concurrent per-key accounting.

use integration_tests::SetConformance;

use ellen_bst::EllenBst;
use lfbst::{Config, HelpPolicy, LfBst, RestartPolicy};
use lflist::LockFreeList;
use locked_bst::{CoarseLockBst, RwLockBst};
use natarajan_bst::NatarajanBst;
use shard::{HashRouter, RangeRouter, Sharded};

fn battery() -> SetConformance {
    SetConformance { threads: 4, ops_per_thread: 15_000, key_range: 256, seed: 0xFEED }
}

#[test]
fn lfbst_default_conformance() {
    battery().check_all(LfBst::<u64>::new);
}

#[test]
fn lfbst_write_optimized_conformance() {
    battery().check_all(|| {
        LfBst::<u64>::with_config(Config::new().help_policy(HelpPolicy::WriteOptimized))
    });
}

#[test]
fn lfbst_root_restart_conformance() {
    battery()
        .check_all(|| LfBst::<u64>::with_config(Config::new().restart_policy(RestartPolicy::Root)));
}

#[test]
fn ellen_bst_conformance() {
    battery().check_all(EllenBst::<u64>::new);
}

#[test]
fn natarajan_bst_conformance() {
    battery().check_all(NatarajanBst::<u64>::new);
}

#[test]
fn harris_list_conformance() {
    // Smaller key range: the list is O(n) per operation.
    let c = SetConformance { key_range: 128, ops_per_thread: 8_000, ..battery() };
    c.check_all(LockFreeList::<u64>::new);
}

#[test]
fn coarse_lock_conformance() {
    battery().check_all(CoarseLockBst::<u64>::new);
}

#[test]
fn sharded_hash_lfbst_conformance() {
    battery().check_all(|| Sharded::new(HashRouter::new(8), |_| LfBst::<u64>::new()));
}

#[test]
fn sharded_range_lfbst_conformance() {
    let c = battery();
    let key_range = c.key_range;
    c.check_all(move || Sharded::new(RangeRouter::covering(8, key_range), |_| LfBst::<u64>::new()));
}

#[test]
fn sharded_layer_is_generic_over_inner_sets() {
    // The same wrapper must conform over a lock-based inner set.
    battery().check_all(|| Sharded::new(HashRouter::new(4), |_| CoarseLockBst::<u64>::new()));
}

#[test]
fn rwlock_conformance() {
    battery().check_all(RwLockBst::<u64>::new);
}
