//! Integration of the workload driver with every set implementation: short
//! timed runs must complete, keep the structure near its prefill size for
//! balanced mixes, and leave the lock-free BST structurally valid.

use std::sync::Arc;
use std::time::Duration;

use ellen_bst::EllenBst;
use lfbst::LfBst;
use lflist::LockFreeList;
use locked_bst::{CoarseLockBst, RwLockBst};
use natarajan_bst::NatarajanBst;
use workload::{run_workload, KeyDistribution, OperationMix, WorkloadSpec};

fn spec() -> WorkloadSpec {
    WorkloadSpec::new(1 << 10, OperationMix::updates(40)).seed(99)
}

#[test]
fn workload_driver_runs_every_structure() {
    let duration = Duration::from_millis(80);
    let threads = 3;

    let m = run_workload(Arc::new(LfBst::new()), &spec(), threads, duration);
    assert!(m.total_ops() > 0, "lfbst produced no operations");
    assert_eq!(m.set_name, "lfbst");

    let m = run_workload(Arc::new(EllenBst::new()), &spec(), threads, duration);
    assert!(m.total_ops() > 0, "ellen produced no operations");

    let m = run_workload(Arc::new(NatarajanBst::new()), &spec(), threads, duration);
    assert!(m.total_ops() > 0, "natarajan produced no operations");

    let m = run_workload(Arc::new(LockFreeList::new()), &spec(), threads, duration);
    assert!(m.total_ops() > 0, "harris list produced no operations");

    let m = run_workload(Arc::new(CoarseLockBst::new()), &spec(), threads, duration);
    assert!(m.total_ops() > 0, "coarse lock produced no operations");

    let m = run_workload(Arc::new(RwLockBst::new()), &spec(), threads, duration);
    assert!(m.total_ops() > 0, "rwlock produced no operations");
}

#[test]
fn lfbst_survives_timed_workload_and_validates() {
    let set = Arc::new(LfBst::new());
    let handle = Arc::clone(&set);
    let m = run_workload(set, &spec(), 4, Duration::from_millis(150));
    assert!(m.total_ops() > 0);
    let report = lfbst::validate::validate(&*handle).expect("tree must be valid after workload");
    assert_eq!(report.nodes, handle.len());
}

#[test]
fn zipf_workload_also_validates() {
    let spec = WorkloadSpec::new(1 << 12, OperationMix::updates(60))
        .distribution(KeyDistribution::Zipf { exponent: 0.99 })
        .seed(3);
    let set = Arc::new(LfBst::new());
    let handle = Arc::clone(&set);
    let m = run_workload(set, &spec, 4, Duration::from_millis(150));
    assert!(m.total_ops() > 0);
    lfbst::validate::validate(&*handle).expect("tree must be valid after zipf workload");
}

#[test]
fn balanced_mix_keeps_size_near_prefill() {
    // With equal insert and remove probability over a fixed key range the
    // population stays near half the range; allow generous slack.
    let set = Arc::new(CoarseLockBst::new());
    let m = run_workload(set, &spec(), 2, Duration::from_millis(120));
    let range = 1usize << 10;
    assert!(m.final_size > range / 8, "size collapsed: {}", m.final_size);
    assert!(m.final_size < range, "size exceeded key range: {}", m.final_size);
}
