//! Rebalance-under-churn: the elastic sharding layer (`shard::ElasticMap` +
//! `shard::Rebalancer`) run against concurrent mixed workloads while the
//! routing table is switched out from under them, instantiated for both
//! reclamation backends.
//!
//! The shard crate's unit tests drive split/merge *mechanically* (a flipper
//! thread calling `split`/`merge` directly); these tests close the loop the
//! way production does — a policy-driven [`Rebalancer`] thread reacting to
//! the load tallies of a skewed workload — and use heap-owning `Vec<u8>`
//! values so every migration also exercises non-node reclamation of the
//! drained trees' payloads.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cset::{ConcurrentMap, OrderedMap};
use lfbst::{Ebr, Ibr, LfBst, Reclaimer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shard::{ElasticMap, RebalancePolicy, Rebalancer};
use std::ops::Bound;

const SPAN: u64 = 1 << 13;
const THREADS: u64 = 4;

fn payload(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

/// One churn round: four threads hammer a skewed key mix (80 % of ops in the
/// bottom 1/16th of the key space) while a policy-driven rebalancer splits
/// the hot strips and merges the cold ones.  Each thread owns the keys of
/// its congruence class and tracks them in a private model, so the final
/// membership check is exact even though the threads run unsynchronized.
type ChurnMap<R> = ElasticMap<LfBst<u64, Vec<u8>, R>, R>;

fn churn_round<R: Reclaimer>(seed: u64) {
    let map: Arc<ChurnMap<R>> = Arc::new(ElasticMap::covering(4, SPAN, LfBst::new_in));
    for k in (0..SPAN).step_by(2) {
        map.insert(k, payload(k));
    }
    let policy = RebalancePolicy {
        min_window_ops: 256,
        interval: Duration::from_millis(1),
        max_shards: 32,
        ..RebalancePolicy::default()
    };
    let balancer = Rebalancer::new(policy).spawn(Arc::clone(&map));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ t);
                let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
                for k in (0..SPAN).step_by(2).filter(|k| k % THREADS == t) {
                    model.insert(k, payload(k));
                }
                for i in 0..20_000u64 {
                    let mut k = rng.gen_range(0..SPAN / THREADS) * THREADS + t;
                    if rng.gen_bool(0.8) {
                        k %= SPAN / 16; // concentrate the heat low
                        k = k / THREADS * THREADS + t;
                    }
                    match rng.gen_range(0..10u8) {
                        0..=4 => {
                            let v = payload(k ^ i);
                            assert_eq!(
                                map.upsert(k, v.clone()),
                                model.insert(k, v),
                                "upsert({k}) diverged on {}",
                                R::NAME
                            );
                        }
                        5..=6 => assert_eq!(
                            map.remove(&k),
                            model.remove(&k),
                            "remove({k}) diverged on {}",
                            R::NAME
                        ),
                        _ => assert_eq!(
                            map.get(&k),
                            model.get(&k).cloned(),
                            "get({k}) diverged on {}",
                            R::NAME
                        ),
                    }
                }
                model
            })
        })
        .collect();
    let models: Vec<BTreeMap<u64, Vec<u8>>> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();
    // Don't stop the rebalancer before it has acted at least once: on a
    // loaded machine a migration can outlast the fixed churn workload, and
    // the `actions > 0` assertion below is about the policy, not timing.
    let deadline = Instant::now() + Duration::from_secs(30);
    while map.rebalances() == 0 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    let actions = balancer.stop();

    // The skew must actually have driven the policy: at least one split
    // landed, and the map grew past its initial four strips at some point
    // (it may have merged back down after the churn stopped).
    assert!(actions > 0, "policy rebalancer never acted on an 80/16 skew ({})", R::NAME);
    assert_eq!(map.rebalances(), actions);

    // Quiescent exactness: every owned key agrees with its owner's model,
    // and one full scan is strictly ascending with the exact union size.
    let total: usize = models.iter().map(BTreeMap::len).sum();
    assert_eq!(map.len(), total);
    for model in &models {
        for (k, v) in model {
            assert_eq!(map.get(k).as_ref(), Some(v), "key {k} diverged on {}", R::NAME);
        }
    }
    let scanned = map.entries_between(Bound::Unbounded, Bound::Unbounded);
    assert_eq!(scanned.len(), total);
    assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));

    drop(map);
    // Drain deferred destruction so rounds don't accumulate garbage.
    for _ in 0..8 {
        R::collect();
    }
}

#[test]
fn rebalance_under_churn_ebr() {
    churn_round::<Ebr>(0x9E1A);
}

#[test]
fn rebalance_under_churn_ibr() {
    churn_round::<Ibr>(0x9E1B);
}

/// Nightly stress: many rounds per backend, scaled by
/// `REBALANCE_STRESS_ROUNDS` (deep-hunt CI sets it high; the default keeps a
/// bare `--ignored` run tolerable).
#[test]
#[ignore = "long-running; nightly CI runs it with REBALANCE_STRESS_ROUNDS=10"]
fn rebalance_under_churn_stress() {
    let rounds: u64 =
        std::env::var("REBALANCE_STRESS_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    for r in 0..rounds {
        churn_round::<Ebr>(0xC0DE + r);
        churn_round::<Ibr>(0xD0DE + r);
    }
}

/// A long scan opened mid-churn keeps its contract while the rebalancer
/// switches tables: strictly ascending, no keys from the never-inserted
/// class, all keys of the untouched class present.
#[test]
fn scans_keep_residue_invariants_under_policy_rebalancer() {
    let map: Arc<ElasticMap<LfBst<u64, Vec<u8>>>> =
        Arc::new(ElasticMap::covering(4, SPAN, LfBst::new_in));
    for k in (3..SPAN).step_by(4) {
        map.insert(k, payload(k));
    }
    let policy = RebalancePolicy {
        min_window_ops: 256,
        interval: Duration::from_millis(1),
        ..RebalancePolicy::default()
    };
    let balancer = Rebalancer::new(policy).spawn(Arc::clone(&map));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churners: Vec<_> = (0..2u64)
        .map(|t| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let class = 2 * t; // churn classes 0 and 2; class 1 never exists
                    let mut k = rng.gen_range(0..SPAN / 4) * 4 + class;
                    if rng.gen_bool(0.8) {
                        k %= SPAN / 16;
                        k = k / 4 * 4 + class;
                    }
                    if rng.gen_bool(0.5) {
                        map.upsert(k, payload(k));
                    } else {
                        map.remove(&k);
                    }
                }
            })
        })
        .collect();

    let expected: Vec<u64> = (3..SPAN).step_by(4).collect();
    for _ in 0..25 {
        let keys: Vec<u64> =
            map.scan_entries(Bound::Unbounded, Bound::Unbounded).map(|(k, _)| k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "scan not strictly ascending");
        assert!(keys.iter().all(|k| k % 4 != 1), "phantom key");
        let stable: Vec<u64> = keys.into_iter().filter(|k| k % 4 == 3).collect();
        assert_eq!(stable, expected, "a stable key vanished mid-rebalance");
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    for c in churners {
        c.join().unwrap();
    }
    balancer.stop();
}
