//! Cross-implementation equivalence: feed the *same* operation sequence to all
//! implementations and require identical results at every step, then identical
//! final contents.  This catches semantic divergences that per-implementation
//! unit tests might miss.

use cset::ConcurrentSet;
use ellen_bst::EllenBst;
use lfbst::LfBst;
use lflist::LockFreeList;
use locked_bst::{CoarseLockBst, RwLockBst};
use natarajan_bst::NatarajanBst;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shard::{HashRouter, RangeRouter, Sharded};

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn random_ops(n: usize, key_range: u64, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..key_range);
            match rng.gen_range(0..3) {
                0 => Op::Insert(k),
                1 => Op::Remove(k),
                _ => Op::Contains(k),
            }
        })
        .collect()
}

fn apply(set: &dyn ConcurrentSet<u64>, op: Op) -> bool {
    match op {
        Op::Insert(k) => set.insert(k),
        Op::Remove(k) => set.remove(&k),
        Op::Contains(k) => set.contains(&k),
    }
}

#[test]
fn all_implementations_agree_on_sequential_histories() {
    for seed in [1u64, 7, 99] {
        let ops = random_ops(30_000, 300, seed);
        let lfbst = LfBst::new();
        let ellen = EllenBst::new();
        let natarajan = NatarajanBst::new();
        let list = LockFreeList::new();
        let coarse = CoarseLockBst::new();
        let rwlock = RwLockBst::new();
        let sharded_hash = Sharded::new(HashRouter::new(8), |_| LfBst::new());
        let sharded_range = Sharded::new(RangeRouter::covering(8, 300), |_| LfBst::new());
        let sets: Vec<&dyn ConcurrentSet<u64>> = vec![
            &lfbst,
            &ellen,
            &natarajan,
            &list,
            &coarse,
            &rwlock,
            &sharded_hash,
            &sharded_range,
        ];
        for (i, &op) in ops.iter().enumerate() {
            let expected = apply(sets[0], op);
            for set in &sets[1..] {
                assert_eq!(
                    apply(*set, op),
                    expected,
                    "{} diverged from lfbst at step {i} ({op:?}), seed {seed}",
                    set.name()
                );
            }
        }
        let reference_len = sets[0].len();
        for set in &sets[1..] {
            assert_eq!(set.len(), reference_len, "{} final size differs", set.name());
        }
        for k in 0..300u64 {
            let expected = sets[0].contains(&k);
            for set in &sets[1..] {
                assert_eq!(set.contains(&k), expected, "{} final membership of {k}", set.name());
            }
        }
    }
}

#[test]
fn snapshots_agree_after_identical_updates() {
    let ops = random_ops(20_000, 200, 1234);
    let lfbst = LfBst::new();
    let ellen = EllenBst::new();
    let natarajan = NatarajanBst::new();
    let list = LockFreeList::new();
    let sharded_range = Sharded::new(RangeRouter::covering(8, 200), |_| LfBst::new());
    for &op in &ops {
        if let Op::Contains(_) = op {
            continue;
        }
        apply(&lfbst, op);
        apply(&ellen, op);
        apply(&natarajan, op);
        apply(&list, op);
        apply(&sharded_range, op);
    }
    let reference = lfbst.iter_keys();
    assert_eq!(reference, ellen.iter_keys());
    assert_eq!(reference, natarajan.iter_keys());
    assert_eq!(reference, list.iter_keys());
    // The order-preserving sharded scan must reproduce the global order.
    assert_eq!(reference, sharded_range.keys_in_range(..));
    lfbst::validate::validate(&lfbst).expect("lfbst structure must validate");
}
