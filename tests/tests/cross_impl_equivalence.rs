//! Cross-implementation equivalence: feed the *same* operation sequence to all
//! implementations and require identical results at every step, then identical
//! final contents.  This catches semantic divergences that per-implementation
//! unit tests might miss.
//!
//! The second half is the **map-conformance suite**: the same step-by-step
//! equivalence discipline applied to the `ConcurrentMap` face (`LfBst<u64,
//! u64>` and its sharded compositions) against a `Mutex<BTreeMap>` oracle,
//! plus a concurrent upsert-vs-remove race battery asserting linearizable
//! `get` results.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Mutex;

use cset::{ConcurrentMap, ConcurrentSet, MapAsSet, OrderedMap};
use ellen_bst::EllenBst;
use lfbst::LfBst;
use lflist::LockFreeList;
use locked_bst::{CoarseLockBst, CoarseLockMap, RwLockBst};
use natarajan_bst::NatarajanBst;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shard::{HashRouter, RangeRouter, Sharded, ShardedMap};

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn random_ops(n: usize, key_range: u64, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..key_range);
            match rng.gen_range(0..3) {
                0 => Op::Insert(k),
                1 => Op::Remove(k),
                _ => Op::Contains(k),
            }
        })
        .collect()
}

fn apply(set: &dyn ConcurrentSet<u64>, op: Op) -> bool {
    match op {
        Op::Insert(k) => set.insert(k),
        Op::Remove(k) => set.remove(&k),
        Op::Contains(k) => set.contains(&k),
    }
}

#[test]
fn all_implementations_agree_on_sequential_histories() {
    for seed in [1u64, 7, 99] {
        let ops = random_ops(30_000, 300, seed);
        let lfbst = LfBst::new();
        let ellen = EllenBst::new();
        let natarajan = NatarajanBst::new();
        let list = LockFreeList::new();
        let coarse = CoarseLockBst::new();
        let rwlock = RwLockBst::new();
        let sharded_hash = Sharded::new(HashRouter::new(8), |_| LfBst::new());
        let sharded_range = Sharded::new(RangeRouter::covering(8, 300), |_| LfBst::new());
        let sets: Vec<&dyn ConcurrentSet<u64>> = vec![
            &lfbst,
            &ellen,
            &natarajan,
            &list,
            &coarse,
            &rwlock,
            &sharded_hash,
            &sharded_range,
        ];
        for (i, &op) in ops.iter().enumerate() {
            let expected = apply(sets[0], op);
            for set in &sets[1..] {
                assert_eq!(
                    apply(*set, op),
                    expected,
                    "{} diverged from lfbst at step {i} ({op:?}), seed {seed}",
                    set.name()
                );
            }
        }
        let reference_len = sets[0].len();
        for set in &sets[1..] {
            assert_eq!(set.len(), reference_len, "{} final size differs", set.name());
        }
        for k in 0..300u64 {
            let expected = sets[0].contains(&k);
            for set in &sets[1..] {
                assert_eq!(set.contains(&k), expected, "{} final membership of {k}", set.name());
            }
        }
    }
}

#[test]
fn snapshots_agree_after_identical_updates() {
    let ops = random_ops(20_000, 200, 1234);
    let lfbst = LfBst::new();
    let ellen = EllenBst::new();
    let natarajan = NatarajanBst::new();
    let list = LockFreeList::new();
    let sharded_range = Sharded::new(RangeRouter::covering(8, 200), |_| LfBst::new());
    for &op in &ops {
        if let Op::Contains(_) = op {
            continue;
        }
        apply(&lfbst, op);
        apply(&ellen, op);
        apply(&natarajan, op);
        apply(&list, op);
        apply(&sharded_range, op);
    }
    let reference = lfbst.iter_keys();
    assert_eq!(reference, ellen.iter_keys());
    assert_eq!(reference, natarajan.iter_keys());
    assert_eq!(reference, list.iter_keys());
    // The order-preserving sharded scan must reproduce the global order.
    assert_eq!(reference, sharded_range.keys_in_range(..));
    lfbst::validate::validate(&lfbst).expect("lfbst structure must validate");
}

#[test]
fn streaming_cursors_agree_across_all_ordered_implementations() {
    // Every OrderedSet in the workspace — the native lfbst cursor, the
    // chunked fallback cursors of the external trees and the lock-based
    // baselines, and the sharded k-way merge — must stream the same keys in
    // the same order as the BTreeSet oracle, for collecting, limited and
    // cursor access alike.
    use cset::OrderedSet;
    let ops = random_ops(15_000, 300, 4321);
    let lfbst = LfBst::new();
    let ellen = EllenBst::new();
    let natarajan = NatarajanBst::new();
    let coarse = CoarseLockBst::new();
    let rwlock = RwLockBst::new();
    let sharded_range = Sharded::new(RangeRouter::covering(8, 300), |_| LfBst::new());
    let mut model = std::collections::BTreeSet::new();
    for &op in &ops {
        match op {
            Op::Insert(k) => {
                model.insert(k);
            }
            Op::Remove(k) => {
                model.remove(&k);
            }
            Op::Contains(_) => continue,
        }
        apply(&lfbst, op);
        apply(&ellen, op);
        apply(&natarajan, op);
        apply(&coarse, op);
        apply(&rwlock, op);
        apply(&sharded_range, op);
    }
    let sets: [&dyn OrderedSet<u64>; 6] =
        [&lfbst, &ellen, &natarajan, &coarse, &rwlock, &sharded_range];
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..30 {
        let x: u64 = rng.gen_range(0..300);
        let y: u64 = rng.gen_range(0..300);
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        let (lo, hi) = (Bound::Included(&a), Bound::Excluded(&b));
        let expected: Vec<u64> = model.range((lo, hi)).copied().collect();
        for set in sets {
            let name = set.name();
            assert_eq!(set.keys_between(lo, hi), expected, "{name} keys_between {a}..{b}");
            let streamed: Vec<u64> = set.scan_keys(lo, hi).collect();
            assert_eq!(streamed, expected, "{name} scan_keys {a}..{b}");
            let paged: Vec<u64> = set.scan_keys(lo, hi).take(5).collect();
            assert_eq!(paged, expected[..expected.len().min(5)].to_vec(), "{name} take(5)");
            assert_eq!(
                set.keys_between_limited(lo, hi, 5),
                expected[..expected.len().min(5)].to_vec(),
                "{name} keys_between_limited {a}..{b}"
            );
        }
    }
    // Successor queries agree everywhere too.
    for set in sets {
        let name = set.name();
        assert_eq!(set.first(), model.iter().next().copied(), "{name} first");
        assert_eq!(set.last(), model.iter().next_back().copied(), "{name} last");
        for probe in (0..300u64).step_by(17) {
            let expected = model.range((Bound::Excluded(probe), Bound::Unbounded)).next().copied();
            assert_eq!(set.next_after(&probe), expected, "{name} next_after({probe})");
        }
    }
}

#[test]
fn remove_range_agrees_across_all_ordered_implementations() {
    // Every OrderedSet (native streaming sweep, chunked defaults, lock-based
    // single-hold overrides, sharded strip fan-out) must remove exactly the
    // keys the BTreeSet oracle says lie in the range, for every bound shape —
    // including empty, reversed and fully-missing ranges.
    use cset::OrderedSet;
    let lfbst = LfBst::new();
    let ellen = EllenBst::new();
    let natarajan = NatarajanBst::new();
    let coarse = CoarseLockBst::new();
    let rwlock = RwLockBst::new();
    let sharded_range = Sharded::new(RangeRouter::covering(8, 400), |_| LfBst::new());
    let sets: [&dyn OrderedSet<u64>; 6] =
        [&lfbst, &ellen, &natarajan, &coarse, &rwlock, &sharded_range];
    let mut model = std::collections::BTreeSet::new();
    let mut rng = StdRng::seed_from_u64(0xE16);

    let bound_of = |which: u32, k: u64| match which {
        0 => Bound::Unbounded,
        1 => Bound::Included(k),
        _ => Bound::Excluded(k),
    };
    for round in 0..60 {
        // Repopulate, then cut a random range out of everything at once.
        for _ in 0..rng.gen_range(50..200) {
            let k = rng.gen_range(0..400u64);
            if model.insert(k) {
                for set in sets {
                    assert!(set.insert(k), "{} disagreed on inserting {k}", set.name());
                }
            }
        }
        let (a, b) = (rng.gen_range(0..400u64), rng.gen_range(0..400u64));
        let lo = bound_of(rng.gen_range(0..3), a);
        let hi = bound_of(rng.gen_range(0..3), b); // reversed/empty shapes included
        let in_range = |k: &u64| {
            (match lo {
                Bound::Unbounded => true,
                Bound::Included(b) => *k >= b,
                Bound::Excluded(b) => *k > b,
            }) && (match hi {
                Bound::Unbounded => true,
                Bound::Included(b) => *k <= b,
                Bound::Excluded(b) => *k < b,
            })
        };
        let doomed: Vec<u64> = model.iter().copied().filter(in_range).collect();
        for &k in &doomed {
            model.remove(&k);
        }
        for set in sets {
            let removed = set.remove_range(lo.as_ref(), hi.as_ref());
            assert_eq!(
                removed,
                doomed.len(),
                "{} removed a different count for {lo:?}..{hi:?} in round {round}",
                set.name()
            );
            assert_eq!(
                set.keys_between(Bound::Unbounded, Bound::Unbounded),
                model.iter().copied().collect::<Vec<_>>(),
                "{} contents diverged after {lo:?}..{hi:?} in round {round}",
                set.name()
            );
        }
    }
    lfbst::validate::validate(&lfbst).expect("lfbst must validate after the range battery");
}

// ---------------------------------------------------------------------------
// Map conformance: LfBst<u64, u64> and its compositions vs a Mutex<BTreeMap>.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum MapOp {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
    Get(u64),
    ContainsKey(u64),
}

fn random_map_ops(n: usize, key_range: u64, seed: u64) -> Vec<MapOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let k = rng.gen_range(0..key_range);
            let v = (i as u64) << 16 | k; // unique per step, key-stamped
            match rng.gen_range(0..5) {
                0 => MapOp::Insert(k, v),
                1 => MapOp::Upsert(k, v),
                2 => MapOp::Remove(k),
                3 => MapOp::Get(k),
                _ => MapOp::ContainsKey(k),
            }
        })
        .collect()
}

/// The observable result of one map operation, for step-wise comparison.
#[derive(Debug, PartialEq, Eq)]
enum MapOutcome {
    Inserted(bool),
    Previous(Option<u64>),
    Value(Option<u64>),
    Present(bool),
}

fn apply_map(map: &dyn ConcurrentMap<u64, u64>, op: MapOp) -> MapOutcome {
    match op {
        MapOp::Insert(k, v) => MapOutcome::Inserted(map.insert(k, v)),
        MapOp::Upsert(k, v) => MapOutcome::Previous(map.upsert(k, v)),
        MapOp::Remove(k) => MapOutcome::Previous(map.remove(&k)),
        MapOp::Get(k) => MapOutcome::Value(map.get(&k)),
        MapOp::ContainsKey(k) => MapOutcome::Present(map.contains_key(&k)),
    }
}

/// The oracle: the sequential `BTreeMap` semantics lifted through a mutex.
fn apply_oracle(oracle: &Mutex<BTreeMap<u64, u64>>, op: MapOp) -> MapOutcome {
    let mut m = oracle.lock().unwrap();
    match op {
        MapOp::Insert(k, v) => MapOutcome::Inserted(match m.entry(k) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(v);
                true
            }
        }),
        MapOp::Upsert(k, v) => MapOutcome::Previous(m.insert(k, v)),
        MapOp::Remove(k) => MapOutcome::Previous(m.remove(&k)),
        MapOp::Get(k) => MapOutcome::Value(m.get(&k).copied()),
        MapOp::ContainsKey(k) => MapOutcome::Present(m.contains_key(&k)),
    }
}

#[test]
fn map_implementations_agree_with_btreemap_oracle_on_sequential_histories() {
    for seed in [2u64, 13, 101] {
        let ops = random_map_ops(30_000, 300, seed);
        let oracle: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());
        let lfbst: LfBst<u64, u64> = LfBst::new();
        let sharded_hash = ShardedMap::new(HashRouter::new(8), |_| LfBst::<u64, u64>::new());
        let sharded_range =
            ShardedMap::new(RangeRouter::covering(8, 300), |_| LfBst::<u64, u64>::new());
        let locked: CoarseLockMap<u64, u64> = CoarseLockMap::new();
        let maps: Vec<&dyn ConcurrentMap<u64, u64>> =
            vec![&lfbst, &sharded_hash, &sharded_range, &locked];
        for (i, &op) in ops.iter().enumerate() {
            let expected = apply_oracle(&oracle, op);
            for map in &maps {
                assert_eq!(
                    apply_map(*map, op),
                    expected,
                    "{} diverged from the BTreeMap oracle at step {i} ({op:?}), seed {seed}",
                    map.name()
                );
            }
        }
        let expected_len = oracle.lock().unwrap().len();
        for map in &maps {
            assert_eq!(map.len(), expected_len, "{} final size differs", map.name());
        }
        for k in 0..300u64 {
            let expected = oracle.lock().unwrap().get(&k).copied();
            for map in &maps {
                assert_eq!(map.get(&k), expected, "{} final value of {k}", map.name());
            }
        }
        lfbst::validate::validate(&lfbst).expect("map tree must validate");
    }
}

#[test]
fn map_ordered_scans_agree_with_the_oracle() {
    let ops = random_map_ops(20_000, 200, 4321);
    let oracle: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());
    let lfbst: LfBst<u64, u64> = LfBst::new();
    let sharded_range =
        ShardedMap::new(RangeRouter::covering(8, 200), |_| LfBst::<u64, u64>::new());
    let locked: CoarseLockMap<u64, u64> = CoarseLockMap::new();
    for &op in &ops {
        if matches!(op, MapOp::Get(_) | MapOp::ContainsKey(_)) {
            continue;
        }
        apply_oracle(&oracle, op);
        apply_map(&lfbst, op);
        apply_map(&sharded_range, op);
        apply_map(&locked, op);
    }
    let model = oracle.lock().unwrap();
    let reference: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(lfbst.iter_entries(), reference);
    assert_eq!(lfbst.entries_between(Bound::Unbounded, Bound::Unbounded), reference);
    assert_eq!(sharded_range.entries_between(Bound::Unbounded, Bound::Unbounded), reference);
    assert_eq!(OrderedMap::entries_between(&locked, Bound::Unbounded, Bound::Unbounded), reference);
    // Sub-range scans agree too, across all bound shapes.
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..50 {
        let a: u64 = rng.gen_range(0..200);
        let b: u64 = rng.gen_range(0..200);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let expected: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(lfbst.entries_between(Bound::Included(&lo), Bound::Included(&hi)), expected);
        assert_eq!(
            sharded_range.entries_between(Bound::Included(&lo), Bound::Included(&hi)),
            expected
        );
    }
}

#[test]
fn map_retain_and_remove_range_agree_with_the_oracle() {
    // The map-face bulk mutations: retain_range must evict exactly the
    // entries the oracle's predicate-over-range evicts, on the native
    // streaming sweep (lfbst), the strip fan-out (sharded range) and the
    // single-lock override alike.
    let oracle: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());
    let lfbst: LfBst<u64, u64> = LfBst::new();
    let sharded_range =
        ShardedMap::new(RangeRouter::covering(8, 300), |_| LfBst::<u64, u64>::new());
    let locked: CoarseLockMap<u64, u64> = CoarseLockMap::new();
    let maps: [&dyn OrderedMap<u64, u64>; 3] = [&lfbst, &sharded_range, &locked];
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for round in 0..40 {
        for _ in 0..rng.gen_range(40..160) {
            let k = rng.gen_range(0..300u64);
            let v = rng.gen_range(0..1000u64);
            oracle.lock().unwrap().insert(k, v);
            for map in maps {
                map.upsert(k, v);
            }
        }
        let (a, b) = (rng.gen_range(0..300u64), rng.gen_range(0..300u64));
        let (lo, hi) = (a.min(b), a.max(b));
        let modulus = rng.gen_range(2..5u64);
        let expected = {
            let mut m = oracle.lock().unwrap();
            let doomed: Vec<u64> =
                m.range(lo..=hi).filter(|(_, v)| *v % modulus != 0).map(|(&k, _)| k).collect();
            for k in &doomed {
                m.remove(k);
            }
            doomed.len()
        };
        for map in maps {
            let removed = map.retain_range(
                Bound::Included(&lo),
                Bound::Included(&hi),
                &move |_: &u64, v: &u64| v % modulus == 0,
            );
            assert_eq!(
                removed,
                expected,
                "{} evicted a different count in round {round} ([{lo}, {hi}] % {modulus})",
                map.name()
            );
        }
        let reference: Vec<(u64, u64)> =
            oracle.lock().unwrap().iter().map(|(&k, &v)| (k, v)).collect();
        for map in maps {
            assert_eq!(
                map.entries_between(Bound::Unbounded, Bound::Unbounded),
                reference,
                "{} contents diverged in round {round}",
                map.name()
            );
        }
    }
    // Drain everything through the map-face remove_range and confirm parity.
    let expected = oracle.lock().unwrap().len();
    for map in maps {
        assert_eq!(map.remove_range(Bound::Unbounded, Bound::Unbounded), expected);
        assert_eq!(map.len(), 0, "{} left residue after the full drain", map.name());
    }
    lfbst::validate::validate(&lfbst).expect("map tree must validate after the retain battery");
}

#[test]
fn map_as_set_bridge_matches_the_set_face_of_the_same_tree() {
    // Any ConcurrentMap<K, ()> serves as a ConcurrentSet<K> through the
    // blanket bridge; driving the bridged lfbst against the native set face
    // step-by-step proves the two agree operation for operation.
    let ops = random_ops(20_000, 250, 777);
    let native: LfBst<u64> = LfBst::new();
    let bridged = MapAsSet(LfBst::<u64, ()>::new());
    for (i, &op) in ops.iter().enumerate() {
        assert_eq!(
            apply(&bridged, op),
            apply(&native, op),
            "bridged map diverged from the native set at step {i} ({op:?})"
        );
    }
    assert_eq!(ConcurrentSet::len(&bridged), native.len());
}

/// The upsert-vs-remove race battery the map contract promises: `get` must
/// stay linearizable while writers replace values in place and removers evict
/// the same keys.
///
/// Values are tagged `(writer, sequence)`, so a reader can prove that every
/// observed value was genuinely written to *that* key (no torn reads, no
/// cross-key leaks, no resurrection of evicted boxes), and the per-key
/// eviction balance ties successful fresh inserts to successful removes.
#[test]
fn concurrent_upsert_vs_remove_keeps_gets_linearizable() {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    const KEYS: u64 = 16; // small key space -> constant collisions
    const OPS: u64 = 30_000;
    const WRITERS: u64 = 2;
    const REMOVERS: u64 = 2;
    const READERS: u64 = 2;

    let map: Arc<LfBst<u64, u64>> = Arc::new(LfBst::new());
    // fresh_balance[k] = successful fresh inserts - successful removes.
    let balance = Arc::new((0..KEYS).map(|_| AtomicI64::new(0)).collect::<Vec<_>>());

    let encode = |writer: u64, seq: u64, key: u64| (writer << 48) | (seq << 8) | key;

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let map = Arc::clone(&map);
        let balance = Arc::clone(&balance);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(w);
            for seq in 0..OPS {
                let k = rng.gen_range(0..KEYS);
                if map.upsert(k, encode(w, seq, k)).is_none() {
                    balance[k as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for r in 0..REMOVERS {
        let map = Arc::clone(&map);
        let balance = Arc::clone(&balance);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + r);
            for _ in 0..OPS {
                let k = rng.gen_range(0..KEYS);
                if let Some(evicted) = map.remove_entry(&k) {
                    assert_eq!(evicted & 0xFF, k, "evicted value belongs to a different key");
                    balance[k as usize].fetch_sub(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for r in 0..READERS {
        let map = Arc::clone(&map);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(200 + r);
            for _ in 0..OPS {
                let k = rng.gen_range(0..KEYS);
                if let Some(v) = map.get(&k) {
                    // Linearizable get: the observed value must be one that
                    // some writer installed for exactly this key, untorn.
                    assert_eq!(v & 0xFF, k, "get returned a value written for another key");
                    let writer = v >> 48;
                    let seq = (v >> 8) & 0xFF_FFFF_FFFF;
                    assert!(writer < WRITERS, "impossible writer tag {writer}");
                    assert!(seq < OPS, "impossible sequence {seq}");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Quiescent accounting: each key is present iff its fresh-insert/remove
    // balance says so, and the final value is well-formed.
    for k in 0..KEYS {
        let b = balance[k as usize].load(std::sync::atomic::Ordering::Relaxed);
        assert!(b == 0 || b == 1, "impossible balance {b} for key {k}");
        match map.get(&k) {
            Some(v) => {
                assert_eq!(b, 1, "key {k} present but balance says absent");
                assert_eq!(v & 0xFF, k);
            }
            None => assert_eq!(b, 0, "key {k} absent but balance says present"),
        }
    }
    lfbst::validate::validate(&*map).expect("map tree must validate after the race");
}
