//! Backend-generic conformance matrix: every behavioural contract the suite
//! checks for the default EBR backend must hold verbatim when the same
//! structure runs on interval-based reclamation, plus the one property that
//! separates the backends — bounded garbage under a stalled reader.
//!
//! The tests are generic over `R: Reclaimer` and instantiated for both
//! [`lfbst::Ebr`] and [`lfbst::Ibr`]; a reclamation bug that only manifests
//! on one backend (premature free, leaked bag, stuck era) fails exactly one
//! instantiation and names it.
//!
//! Reclamation statistics and the `GarbageBound` ceiling are process-global,
//! so every test here serialises on one mutex — each `.rs` file under
//! `tests/` is its own test binary, which makes the lock airtight.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crossbeam_epoch::{garbage_bound, set_garbage_bound};
use lfbst::{Ebr, GarbageBound, Ibr, LfBst, Reclaimer};
use lflist::LockFreeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Serialises the tests in this binary: they assert on process-wide
/// reclamation counters and mutate the global garbage ceiling.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(|e| e.into_inner())
}

/// Sequential set conformance against a `BTreeSet` oracle, over whichever
/// structure the closure builds.
fn set_agrees_with_oracle(set: &dyn cset::ConcurrentSet<u64>, seed: u64) {
    let mut oracle = BTreeSet::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..4_000 {
        let k = rng.gen_range(0..64u64);
        match rng.gen_range(0..3u8) {
            0 => assert_eq!(set.insert(k), oracle.insert(k), "insert({k}) on {}", set.name()),
            1 => assert_eq!(set.remove(&k), oracle.remove(&k), "remove({k}) on {}", set.name()),
            _ => assert_eq!(set.contains(&k), oracle.contains(&k), "contains({k})"),
        }
        assert_eq!(set.len(), oracle.len());
    }
}

fn set_conformance<R: Reclaimer>() {
    let tree: LfBst<u64, (), R> = LfBst::new_in();
    set_agrees_with_oracle(&tree, 0xC0FF_EE00);
    lfbst::validate::validate(&tree).expect("tree validates after oracle run");
    let list: LockFreeList<u64, R> = LockFreeList::new_in();
    set_agrees_with_oracle(&list, 0xC0FF_EE01);
}

fn map_conformance<R: Reclaimer>() {
    let map: LfBst<u64, u64, R> = LfBst::new_in();
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0xABBA);
    for i in 0..4_000u64 {
        let k = rng.gen_range(0..64u64);
        match rng.gen_range(0..3u8) {
            0 => assert_eq!(map.upsert(k, i), oracle.insert(k, i), "upsert({k})"),
            1 => assert_eq!(map.remove_entry(&k), oracle.remove(&k), "remove_entry({k})"),
            _ => assert_eq!(map.get(&k), oracle.get(&k).copied(), "get({k})"),
        }
    }
    assert_eq!(
        map.entries_in_range(..).into_iter().collect::<Vec<_>>(),
        oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
        "final ordered snapshot diverged from the oracle"
    );
}

/// The upsert-vs-remove race (condensed from `cross_impl_equivalence`):
/// tagged values prove `get` stays linearizable while writers replace in
/// place and removers evict the same hot keys — on either backend, stale
/// reads through a prematurely freed box would surface as a foreign tag.
fn upsert_vs_remove_race<R: Reclaimer>() {
    const KEYS: u64 = 16;
    const OPS: u64 = 15_000;

    let map: Arc<LfBst<u64, u64, R>> = Arc::new(LfBst::new_in());
    let balance = Arc::new((0..KEYS).map(|_| AtomicI64::new(0)).collect::<Vec<_>>());
    let encode = |writer: u64, seq: u64, key: u64| (writer << 48) | (seq << 8) | key;

    let mut handles = Vec::new();
    for w in 0..2u64 {
        let map = Arc::clone(&map);
        let balance = Arc::clone(&balance);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(w);
            for seq in 0..OPS {
                let k = rng.gen_range(0..KEYS);
                if map.upsert(k, encode(w, seq, k)).is_none() {
                    balance[k as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for r in 0..2u64 {
        let map = Arc::clone(&map);
        let balance = Arc::clone(&balance);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + r);
            for _ in 0..OPS {
                let k = rng.gen_range(0..KEYS);
                if let Some(evicted) = map.remove_entry(&k) {
                    assert_eq!(evicted & 0xFF, k, "evicted value belongs to a different key");
                    balance[k as usize].fetch_sub(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for r in 0..2u64 {
        let map = Arc::clone(&map);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(200 + r);
            for _ in 0..OPS {
                let k = rng.gen_range(0..KEYS);
                if let Some(v) = map.get(&k) {
                    assert_eq!(v & 0xFF, k, "get returned a value written for another key");
                    assert!(v >> 48 < 2, "impossible writer tag");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for k in 0..KEYS {
        let b = balance[k as usize].load(Ordering::Relaxed);
        assert!(b == 0 || b == 1, "impossible balance {b} for key {k}");
        assert_eq!(map.get(&k).is_some(), b == 1, "key {k} presence disagrees with balance");
    }
    lfbst::validate::validate(&*map).expect("tree validates after the race");
}

/// The bulk-mutation matrix row: the streaming `remove_range`/`retain`
/// sweeps must agree with the oracle on backend `R` exactly as single-key
/// removals do — the sweep drives the same removal protocol, but retires
/// victims through `retire_batch` windows, which is precisely the code path
/// a backend could get wrong (freeing a chunk the guard still references,
/// or never settling the window).
fn bulk_sweep_conformance<R: Reclaimer>() {
    let map: LfBst<u64, u64, R> = LfBst::new_in();
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0xB01D);
    for round in 0..30 {
        for _ in 0..rng.gen_range(64..256) {
            let k = rng.gen_range(0..512u64);
            let v = rng.gen_range(0..100u64);
            map.upsert(k, v);
            oracle.insert(k, v);
        }
        if round % 3 == 0 {
            let cutoff = rng.gen_range(0..100u64);
            let expected = {
                let doomed: Vec<u64> =
                    oracle.iter().filter(|(_, &v)| v < cutoff).map(|(&k, _)| k).collect();
                for k in &doomed {
                    oracle.remove(k);
                }
                doomed.len()
            };
            assert_eq!(map.retain(|_, v| *v >= cutoff), expected, "retain<{cutoff} diverged");
        } else {
            let (a, b) = (rng.gen_range(0..512u64), rng.gen_range(0..512u64));
            let (lo, hi) = (a.min(b), a.max(b));
            let expected = {
                let doomed: Vec<u64> = oracle.range(lo..hi).map(|(&k, _)| k).collect();
                for k in &doomed {
                    oracle.remove(k);
                }
                doomed.len()
            };
            assert_eq!(map.remove_range(lo..hi), expected, "remove_range {lo}..{hi} diverged");
        }
        assert_eq!(
            map.entries_in_range(..).into_iter().collect::<Vec<_>>(),
            oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
            "contents diverged after round {round}"
        );
    }
    lfbst::validate::validate(&map).expect("tree validates after the sweep battery");
}

#[test]
fn bulk_sweep_conformance_on_ebr() {
    let _g = lock();
    bulk_sweep_conformance::<Ebr>();
}

#[test]
fn bulk_sweep_conformance_on_ibr() {
    let _g = lock();
    bulk_sweep_conformance::<Ibr>();
}

/// The `GarbageBound` interaction the bulk sweeps depend on: a batch-retire
/// window settles the bound **once per chunk**, not once per retired node.
/// With a ceiling far below one chunk's garbage, a sweep over many chunks
/// must trip the bound at most a handful of times (one settle per window) —
/// per-node enforcement would trip it thousands of times and pay the whole
/// futile ladder each time.
#[test]
fn bulk_retirement_checks_the_bound_once_per_chunk() {
    let _g = lock();
    // 4 full sweep windows of lfbst::bulk::BULK_CHUNK = 512 doomed keys.
    const N: u64 = 2048;
    const CHUNKS: u64 = N / lfbst::bulk::BULK_CHUNK as u64;
    let tree: LfBst<u64, ()> = LfBst::new();
    for k in 0..N {
        tree.insert(k);
    }
    <Ebr as Reclaimer>::collect();

    let saved = garbage_bound();
    set_garbage_bound(GarbageBound::nodes(64));
    let before = <Ebr as Reclaimer>::stats();
    assert_eq!(tree.remove_range(..), N as usize);
    let delta = <Ebr as Reclaimer>::stats().since(&before);
    set_garbage_bound(saved);

    assert!(delta.nodes_retired >= N, "the sweep retired fewer nodes than it removed: {delta:?}");
    assert!(delta.bound_trips >= 1, "the ceiling was never consulted: {delta:?}");
    assert!(
        delta.bound_trips <= 2 * CHUNKS,
        "bound checked per node, not per chunk ({} trips over {CHUNKS} chunks): {delta:?}",
        delta.bound_trips
    );
}

#[test]
fn set_conformance_on_ebr() {
    let _g = lock();
    set_conformance::<Ebr>();
}

#[test]
fn set_conformance_on_ibr() {
    let _g = lock();
    set_conformance::<Ibr>();
}

#[test]
fn map_conformance_on_ebr() {
    let _g = lock();
    map_conformance::<Ebr>();
}

#[test]
fn map_conformance_on_ibr() {
    let _g = lock();
    map_conformance::<Ibr>();
}

#[test]
fn upsert_vs_remove_race_on_ebr() {
    let _g = lock();
    upsert_vs_remove_race::<Ebr>();
}

#[test]
fn upsert_vs_remove_race_on_ibr() {
    let _g = lock();
    upsert_vs_remove_race::<Ibr>();
}

/// Churns a tree on backend `R` for `duration` while one thread holds a bare
/// reclamation guard the whole time, and returns the backend's bag-depth
/// high-water mark over the episode (peak unreclaimed nodes).
fn stalled_reader_peak_garbage<R: Reclaimer>(duration: Duration) -> u64 {
    let tree: Arc<LfBst<u64, (), R>> = Arc::new(LfBst::new_in());
    for k in 0..1024u64 {
        tree.insert(k);
    }
    R::collect();
    R::reset_bag_depth_hwm();

    let stop = Arc::new(AtomicBool::new(false));
    let stalled = {
        let stop = Arc::clone(&stop);
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || {
            // Pin once, touch the tree, then sit on the guard until told to
            // stop: a reader descheduled mid-traversal.
            let guard = R::pin();
            assert!(tree.contains(&0));
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            drop(guard);
        })
    };
    let churners: Vec<_> = (0..3u64)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..1024u64);
                    tree.remove(&k);
                    tree.insert(k);
                }
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    stalled.join().unwrap();
    for h in churners {
        h.join().unwrap();
    }
    R::stats().bag_depth_hwm
}

/// The property this PR's tentpole exists to buy: with a stalled reader in
/// the domain, IBR's peak unreclaimed garbage stays under the configured
/// `GarbageBound` (the escalation ladder can still free everything born
/// after the frozen reservation), while the EBR control — same workload,
/// same ceiling, same stall — blows through it because a pinned reader
/// freezes the global epoch and no amount of collect effort can free
/// anything at all.
#[test]
fn stalled_reader_garbage_is_bounded_on_ibr_but_not_ebr() {
    let _g = lock();
    const BOUND: usize = 4_000;
    let saved = garbage_bound();
    set_garbage_bound(GarbageBound::nodes(BOUND));

    let stall = Duration::from_millis(400);
    let ibr_peak = stalled_reader_peak_garbage::<Ibr>(stall);
    let ebr_peak = stalled_reader_peak_garbage::<Ebr>(stall);

    set_garbage_bound(saved);

    // IBR: the ladder holds the line at the ceiling.  The margin of 2x
    // absorbs enforcement granularity (the bound is checked per retirement,
    // and a whole era of stragglers can land between checks).
    assert!(
        ibr_peak <= (BOUND * 2) as u64,
        "IBR peak garbage {ibr_peak} blew through the {BOUND}-node ceiling"
    );
    // EBR: every retirement of the episode is stuck behind the stalled pin.
    assert!(
        ebr_peak > BOUND as u64,
        "EBR control peaked at {ebr_peak} <= {BOUND}: the stall injected no pressure, \
         so the IBR assertion above proved nothing"
    );
    assert!(
        ebr_peak > ibr_peak,
        "EBR ({ebr_peak}) should strand more garbage than IBR ({ibr_peak}) under a stall"
    );
}

/// Nightly stress hunt against the IBR backend (run `--ignored` by the CI
/// deep-hunt job): repeated rounds of the upsert-vs-remove race battery,
/// periodically overlapped with a stalled-reader churn episode so eras
/// freeze and thaw mid-race.  Round count via `IBR_STRESS_ROUNDS`
/// (default 25 so a local `--ignored` run stays minutes, not hours).
#[test]
#[ignore = "long-running; nightly CI runs it with IBR_STRESS_ROUNDS=200"]
fn ibr_stress_hunt() {
    let _g = lock();
    let rounds: u64 =
        std::env::var("IBR_STRESS_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(25);
    for round in 0..rounds {
        upsert_vs_remove_race::<Ibr>();
        if round % 8 == 0 {
            let peak = stalled_reader_peak_garbage::<Ibr>(Duration::from_millis(50));
            assert!(peak > 0, "round {round}: stalled churn retired nothing");
        }
    }
}
