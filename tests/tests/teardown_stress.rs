//! Bulk-mutation sweeps under concurrent churn: the weak-consistency residue
//! contract, and the env-scaled teardown-under-churn stress round the nightly
//! deep hunt runs.
//!
//! The sweep contract is **weakly consistent as a whole, linearizable per
//! key**: every key's removal is one run of the removal protocol (exactly one
//! remover wins it), but keys inserted into the range while the sweep is in
//! flight may or may not be caught.  These tests pin down both halves: the
//! per-key accounting must partition perfectly, and the only allowed residue
//! after a full-range sweep is keys inserted during it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cset::{ConcurrentMap, ConcurrentSet};
use lfbst::LfBst;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shard::{ElasticMap, RangeRouter, Sharded};

/// Keys inserted *while a full-range sweep runs* are the only residue the
/// weak-consistency contract allows, and nothing is lost or double-counted:
/// sweep removals plus a post-quiescence drain must account for every
/// successful insert exactly once.
#[test]
fn sweep_residue_is_only_what_churn_inserted_mid_flight() {
    const PREFILL: u64 = 1 << 14;
    const CHURN_THREADS: u64 = 3;
    const CHURN_INSERTS: u64 = 4_000;

    for round in 0..4u64 {
        let tree: Arc<LfBst<u64>> = Arc::new(LfBst::new());
        for k in 0..PREFILL {
            assert!(tree.insert(k));
        }
        let fresh_inserts = Arc::new(AtomicU64::new(0));

        let sweeper = {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || tree.remove_range(..))
        };
        let churners: Vec<_> = (0..CHURN_THREADS)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let fresh = Arc::clone(&fresh_inserts);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(round * 100 + t);
                    for _ in 0..CHURN_INSERTS {
                        // Same key space as the prefill: collisions with keys
                        // the sweep has not yet removed are expected and must
                        // report as failed inserts.
                        let k = rng.gen_range(0..PREFILL);
                        if tree.insert(k) {
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        let swept = sweeper.join().unwrap() as u64;
        for c in churners {
            c.join().unwrap();
        }

        // Residue = keys the churners slipped in behind the cursor.  Every
        // one of them was a successful fresh insert, so the quiescent drain
        // closes the books: prefill + fresh = swept + residue.
        let residue = tree.remove_range(..) as u64;
        let fresh = fresh_inserts.load(Ordering::Relaxed);
        assert_eq!(
            swept + residue,
            PREFILL + fresh,
            "round {round}: removal accounting does not partition \
             (swept {swept}, residue {residue}, prefill {PREFILL}, fresh {fresh})"
        );
        assert!(tree.is_empty(), "round {round}: drain left keys behind");
        lfbst::validate::validate(&tree).expect("tree validates after churned sweep");
    }
}

/// `retain` under churn obeys the same residue rule: survivors are exactly
/// the keys the predicate kept plus (possibly) keys inserted mid-sweep.
#[test]
fn retain_under_churn_never_evicts_a_kept_key() {
    const PREFILL: u64 = 1 << 13;
    let map: Arc<LfBst<u64, u64>> = Arc::new(LfBst::new());
    for k in 0..PREFILL {
        assert!(map.insert_entry(k, k));
    }
    let sweeper = {
        let map = Arc::clone(&map);
        // Keep even values only.
        std::thread::spawn(move || map.retain(|_, v| v % 2 == 0))
    };
    let churner = {
        let map = Arc::clone(&map);
        std::thread::spawn(move || {
            // Insert odd-valued entries at fresh keys while the sweep runs.
            for k in PREFILL..PREFILL + 2_000 {
                assert!(map.insert_entry(k, 1));
            }
        })
    };
    let evicted = sweeper.join().unwrap() as u64;
    churner.join().unwrap();

    assert!(evicted >= PREFILL / 2, "the sweep missed prefilled odd entries: {evicted}");
    for k in 0..PREFILL {
        // Every surviving prefill entry must satisfy the predicate: a kept
        // key is never evicted, an evicted key was odd-valued.
        if let Some(v) = map.get(&k) {
            assert_eq!(v % 2, 0, "retain evicted wrongly or kept an odd value at {k}");
        } else {
            assert_eq!(k % 2, 1, "even-valued entry {k} vanished");
        }
    }
    lfbst::validate::validate(&map).expect("map validates after churned retain");
}

/// The teardown-under-churn stress round (env-scaled, nightly deep hunt runs
/// it with `TEARDOWN_STRESS_ROUNDS=50`): refill/teardown cycles race range
/// sweeps, single-key removers and inserters on the sharded and elastic
/// compositions, asserting the per-key partition every round.
#[test]
#[ignore = "long-running; nightly CI runs it with TEARDOWN_STRESS_ROUNDS=50"]
fn teardown_under_churn_stress() {
    let rounds: u64 =
        std::env::var("TEARDOWN_STRESS_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    const KEYS: u64 = 1 << 13;
    const SHARDS: usize = 8;

    for round in 0..rounds {
        // Sharded: a sweep fanning out across strips races per-key removers.
        let set = Arc::new(Sharded::new(RangeRouter::covering(SHARDS, KEYS), |_| LfBst::new()));
        for k in 0..KEYS {
            assert!(set.insert(k));
        }
        let hits = Arc::new(AtomicU64::new(0));
        let sweeper = {
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                cset::OrderedSet::remove_range(
                    &*set,
                    std::ops::Bound::Unbounded,
                    std::ops::Bound::Unbounded,
                ) as u64
            })
        };
        let removers: Vec<_> = (0..3u64)
            .map(|t| {
                let set = Arc::clone(&set);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(round * 31 + t);
                    for _ in 0..KEYS / 2 {
                        let k = rng.gen_range(0..KEYS);
                        if set.remove(&k) {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        let swept = sweeper.join().unwrap();
        for r in removers {
            r.join().unwrap();
        }
        let leftover = cset::OrderedSet::remove_range(
            &*set,
            std::ops::Bound::Unbounded,
            std::ops::Bound::Unbounded,
        ) as u64;
        assert_eq!(
            swept + hits.load(Ordering::Relaxed) + leftover,
            KEYS,
            "round {round}: sharded teardown lost or double-counted keys"
        );
        assert_eq!(set.len(), 0, "round {round}: sharded teardown left residue");

        // Elastic: whole-strip swaps race inserters that immediately refill.
        let map: Arc<ElasticMap<LfBst<u64, u64>>> =
            Arc::new(ElasticMap::covering(SHARDS, KEYS, LfBst::new));
        for k in 0..KEYS {
            map.insert(k, k);
        }
        let clearer = {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                cset::OrderedMap::remove_range(
                    &*map,
                    std::ops::Bound::Unbounded,
                    std::ops::Bound::Unbounded,
                ) as u64
            })
        };
        let refiller = {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut fresh = 0u64;
                for k in (0..KEYS).step_by(7) {
                    if map.insert(k, k + 1) {
                        fresh += 1;
                    }
                }
                fresh
            })
        };
        let cleared = clearer.join().unwrap();
        let fresh = refiller.join().unwrap();
        let leftover = cset::OrderedMap::remove_range(
            &*map,
            std::ops::Bound::Unbounded,
            std::ops::Bound::Unbounded,
        ) as u64;
        assert_eq!(
            cleared + leftover,
            KEYS + fresh,
            "round {round}: elastic teardown lost or double-counted entries"
        );
        assert_eq!(map.len(), 0, "round {round}: elastic teardown left residue");
    }
}
